#include "proto/wire.hpp"

#include <gtest/gtest.h>

namespace dacc::proto {
namespace {

TEST(Wire, ScalarsRoundTrip) {
  auto buf = WireWriter{}
                 .u32(0xdeadbeef)
                 .u64(0x0123456789abcdefull)
                 .f64(-2.5)
                 .finish();
  WireReader r(buf);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.f64(), -2.5);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, StringsRoundTrip) {
  auto buf = WireWriter{}.str("").str("dgemm_nt").finish();
  WireReader r(buf);
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "dgemm_nt");
}

TEST(Wire, OpAndResultRoundTrip) {
  auto buf = WireWriter{}
                 .op(Op::kMemcpyHtoD)
                 .result(gpu::Result::kOutOfMemory)
                 .finish();
  WireReader r(buf);
  EXPECT_EQ(r.op(), Op::kMemcpyHtoD);
  EXPECT_EQ(r.result(), gpu::Result::kOutOfMemory);
}

TEST(Wire, TransferConfigRoundTrip) {
  TransferConfig c;
  c.mode = TransferConfig::Mode::kPipeline;
  c.block_bytes = 123456;
  c.adaptive = true;
  c.adaptive_small_bytes = 111;
  c.adaptive_large_bytes = 222;
  c.adaptive_cutoff_bytes = 333;
  c.gpudirect = false;
  auto buf = WireWriter{}.transfer_config(c).finish();
  const TransferConfig d = WireReader(buf).transfer_config();
  EXPECT_EQ(d.mode, c.mode);
  EXPECT_EQ(d.block_bytes, c.block_bytes);
  EXPECT_EQ(d.adaptive, c.adaptive);
  EXPECT_EQ(d.adaptive_small_bytes, c.adaptive_small_bytes);
  EXPECT_EQ(d.adaptive_large_bytes, c.adaptive_large_bytes);
  EXPECT_EQ(d.adaptive_cutoff_bytes, c.adaptive_cutoff_bytes);
  EXPECT_EQ(d.gpudirect, c.gpudirect);
}

TEST(Wire, LaunchConfigRoundTrip) {
  gpu::LaunchConfig c;
  c.grid = {10, 20, 30};
  c.block = {256, 1, 2};
  auto buf = WireWriter{}.launch_config(c).finish();
  const gpu::LaunchConfig d = WireReader(buf).launch_config();
  EXPECT_EQ(d.grid.x, 10u);
  EXPECT_EQ(d.grid.y, 20u);
  EXPECT_EQ(d.grid.z, 30u);
  EXPECT_EQ(d.block.x, 256u);
  EXPECT_EQ(d.block.z, 2u);
}

TEST(Wire, KernelArgsRoundTrip) {
  gpu::KernelArgs args{gpu::DevPtr{0x1000}, std::int64_t{-42}, 3.75};
  auto buf = WireWriter{}.kernel_args(args).finish();
  const gpu::KernelArgs out = WireReader(buf).kernel_args();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(gpu::arg_ptr(out, 0), 0x1000u);
  EXPECT_EQ(gpu::arg_i64(out, 1), -42);
  EXPECT_EQ(gpu::arg_f64(out, 2), 3.75);
}

TEST(Wire, TruncatedMessageThrows) {
  auto buf = WireWriter{}.u32(1).finish();
  WireReader r(buf);
  (void)r.u32();
  EXPECT_THROW((void)r.u64(), std::runtime_error);
}

TEST(Wire, TruncatedStringThrows) {
  // Length prefix promises more bytes than present.
  auto buf = WireWriter{}.u32(100).finish();
  WireReader r(buf);
  EXPECT_THROW((void)r.str(), std::runtime_error);
}

TEST(Wire, BadKernelArgKindThrows) {
  auto buf = WireWriter{}.u32(1).u32(99).finish();
  WireReader r(buf);
  EXPECT_THROW((void)r.kernel_args(), std::runtime_error);
}

TEST(TransferConfig, EffectiveBlockFixed) {
  const auto c = TransferConfig::pipeline(128 * 1024);
  EXPECT_EQ(c.effective_block(1024), 128u * 1024);
  EXPECT_EQ(c.effective_block(64u * 1024 * 1024), 128u * 1024);
}

TEST(TransferConfig, EffectiveBlockNaiveIsWholePayload) {
  const auto c = TransferConfig::naive();
  EXPECT_EQ(c.effective_block(777), 777u);
}

TEST(TransferConfig, AdaptiveSwitchesAtCutoff) {
  const auto c = TransferConfig::pipeline_adaptive();
  EXPECT_EQ(c.effective_block(1024 * 1024), c.adaptive_small_bytes);
  EXPECT_EQ(c.effective_block(c.adaptive_cutoff_bytes),
            c.adaptive_large_bytes);
  EXPECT_EQ(c.effective_block(64u * 1024 * 1024), c.adaptive_large_bytes);
}

}  // namespace
}  // namespace dacc::proto
