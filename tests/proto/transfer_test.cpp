#include "proto/transfer.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/units.hpp"

namespace dacc::proto {
namespace {

TEST(BlockPlan, ExactMultiple) {
  const BlockPlan plan(1_MiB, TransferConfig::pipeline(256_KiB));
  EXPECT_EQ(plan.count(), 4u);
  EXPECT_EQ(plan.offset(3), 768_KiB);
  EXPECT_EQ(plan.size(3), 256_KiB);
}

TEST(BlockPlan, RemainderBlockIsShort) {
  const BlockPlan plan(1_MiB + 100, TransferConfig::pipeline(256_KiB));
  EXPECT_EQ(plan.count(), 5u);
  EXPECT_EQ(plan.size(4), 100u);
}

TEST(BlockPlan, PayloadSmallerThanBlock) {
  const BlockPlan plan(1000, TransferConfig::pipeline(256_KiB));
  EXPECT_EQ(plan.count(), 1u);
  EXPECT_EQ(plan.size(0), 1000u);
}

TEST(BlockPlan, NaiveIsSingleBlock) {
  const BlockPlan plan(64_MiB, TransferConfig::naive());
  EXPECT_EQ(plan.count(), 1u);
  EXPECT_EQ(plan.size(0), 64_MiB);
}

TEST(BlockPlan, ZeroBytes) {
  const BlockPlan plan(0, TransferConfig::pipeline(128_KiB));
  EXPECT_EQ(plan.count(), 0u);
}

TEST(BlockPlan, OutOfRangeThrows) {
  const BlockPlan plan(100, TransferConfig::naive());
  EXPECT_THROW((void)plan.offset(1), std::out_of_range);
  EXPECT_THROW((void)plan.size(1), std::out_of_range);
}

// --- end-to-end block streaming over dmpi ---------------------------------

class TransferTest : public ::testing::TestWithParam<TransferConfig> {
 protected:
  void stream_and_check(std::uint64_t bytes) {
    sim::Engine engine;
    net::Fabric fabric(engine, 2);
    dmpi::World world(engine, fabric, {0, 1});
    const TransferConfig config = GetParam();

    std::vector<std::byte> payload(bytes);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::byte>(i * 7 & 0xff);
    }

    engine.spawn("tx", [&](sim::Context& ctx) {
      dmpi::Mpi mpi(world, ctx, 0);
      send_blocks(mpi, world.world_comm(), 1,
                  util::Buffer::backed(std::vector<std::byte>(payload)),
                  config);
    });
    util::Buffer got;
    engine.spawn("rx", [&](sim::Context& ctx) {
      dmpi::Mpi mpi(world, ctx, 1);
      got = recv_assemble(mpi, world.world_comm(), 0, bytes, config);
    });
    engine.run();

    ASSERT_EQ(got.size(), bytes);
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           got.bytes().begin()));
  }
};

TEST_P(TransferTest, SmallPayloadRoundTrips) { stream_and_check(1000); }
TEST_P(TransferTest, MediumPayloadRoundTrips) { stream_and_check(1_MiB + 3); }
TEST_P(TransferTest, LargePayloadRoundTrips) { stream_and_check(4_MiB); }

INSTANTIATE_TEST_SUITE_P(
    Configs, TransferTest,
    ::testing::Values(TransferConfig::naive(),
                      TransferConfig::pipeline(64_KiB),
                      TransferConfig::pipeline(128_KiB),
                      TransferConfig::pipeline(512_KiB),
                      TransferConfig::pipeline_adaptive()));

TEST(Transfer, OnBlockSeesOrderedOffsets) {
  sim::Engine engine;
  net::Fabric fabric(engine, 2);
  dmpi::World world(engine, fabric, {0, 1});
  const auto config = TransferConfig::pipeline(128_KiB);
  const std::uint64_t total = 1_MiB;

  engine.spawn("tx", [&](sim::Context& ctx) {
    dmpi::Mpi mpi(world, ctx, 0);
    send_blocks(mpi, world.world_comm(), 1, util::Buffer::phantom(total),
                config);
  });
  std::vector<std::uint64_t> offsets;
  engine.spawn("rx", [&](sim::Context& ctx) {
    dmpi::Mpi mpi(world, ctx, 1);
    recv_blocks(mpi, world.world_comm(), 0, total, config,
                [&](std::uint64_t off, util::Buffer block) {
                  offsets.push_back(off);
                  EXPECT_EQ(block.size(), 128_KiB);
                });
  });
  engine.run();
  ASSERT_EQ(offsets.size(), 8u);
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_EQ(offsets[i], i * 128_KiB);
  }
}

TEST(Transfer, BlocksArriveProgressivelyNotAllAtEnd) {
  // The pipeline property: first block arrives long before the last.
  sim::Engine engine;
  net::Fabric fabric(engine, 2);
  dmpi::World world(engine, fabric, {0, 1});
  const auto config = TransferConfig::pipeline(512_KiB);
  const std::uint64_t total = 16_MiB;

  engine.spawn("tx", [&](sim::Context& ctx) {
    dmpi::Mpi mpi(world, ctx, 0);
    send_blocks(mpi, world.world_comm(), 1, util::Buffer::phantom(total),
                config);
  });
  SimTime first_block = 0;
  SimTime last_block = 0;
  engine.spawn("rx", [&](sim::Context& ctx) {
    dmpi::Mpi mpi(world, ctx, 1);
    recv_blocks(mpi, world.world_comm(), 0, total, config,
                [&](std::uint64_t off, util::Buffer) {
                  if (off == 0) first_block = ctx.now();
                  last_block = ctx.now();
                });
  });
  engine.run();
  // First block lands in roughly a block's worth of time; the rest stream
  // in over the full serialization time.
  EXPECT_LT(first_block, last_block / 8);
}

TEST(Transfer, ZeroByteTransferIsNoop) {
  sim::Engine engine;
  net::Fabric fabric(engine, 2);
  dmpi::World world(engine, fabric, {0, 1});
  int calls = 0;
  engine.spawn("tx", [&](sim::Context& ctx) {
    dmpi::Mpi mpi(world, ctx, 0);
    send_blocks(mpi, world.world_comm(), 1, util::Buffer{},
                TransferConfig::pipeline(128_KiB));
  });
  engine.spawn("rx", [&](sim::Context& ctx) {
    dmpi::Mpi mpi(world, ctx, 1);
    recv_blocks(mpi, world.world_comm(), 0, 0,
                TransferConfig::pipeline(128_KiB),
                [&](std::uint64_t, util::Buffer) { ++calls; });
  });
  engine.run();
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace dacc::proto
