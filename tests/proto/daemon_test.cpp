// Exercises the back-end daemon through the raw wire protocol, playing the
// front-end by hand (the polished ac* API sits on top of exactly these
// exchanges).
#include "daemon/daemon.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "proto/transfer.hpp"
#include "util/units.hpp"

namespace dacc::daemon {
namespace {

using gpu::Result;
using proto::kDataTag;
using proto::kRequestTag;
using proto::kResponseTag;
using proto::Op;
using proto::TransferConfig;
using proto::WireReader;
using proto::WireWriter;

/// Node 0: client. Nodes 1..n: one daemon each.
class DaemonBed {
 public:
  explicit DaemonBed(int daemons = 1, bool functional = true)
      : fabric_(engine_, daemons + 1),
        world_(engine_, fabric_, make_nodes(daemons + 1)),
        registry_(gpu::KernelRegistry::with_builtins()) {
    for (int i = 0; i < daemons; ++i) {
      devices_.push_back(std::make_unique<gpu::Device>(
          engine_, gpu::tesla_c1060(), registry_, functional));
      daemons_.push_back(std::make_unique<Daemon>(
          *devices_.back(), world_, /*self=*/i + 1));
    }
  }

  /// Runs the client body; daemons are shut down afterwards automatically.
  void run(std::function<void(dmpi::Mpi&, sim::Context&)> client) {
    for (std::size_t i = 0; i < daemons_.size(); ++i) {
      engine_.spawn("daemon" + std::to_string(i + 1),
                    [this, i](sim::Context& ctx) { daemons_[i]->run(ctx); });
    }
    engine_.spawn("client", [this, client = std::move(client)](
                                sim::Context& ctx) {
      dmpi::Mpi mpi(world_, ctx, 0);
      client(mpi, ctx);
      for (std::size_t i = 0; i < daemons_.size(); ++i) {
        const auto d = static_cast<dmpi::Rank>(i + 1);
        mpi.send(comm(), d, kRequestTag,
                 WireWriter{}.op(Op::kShutdown).u32(kResponseTag).finish());
        (void)mpi.recv(comm(), d, kResponseTag);
      }
    });
    engine_.run();
  }

  const dmpi::Comm& comm() { return world_.world_comm(); }
  gpu::Device& device(int i = 0) { return *devices_[static_cast<std::size_t>(i)]; }
  Daemon& daemon(int i = 0) { return *daemons_[static_cast<std::size_t>(i)]; }

  // --- raw protocol helpers (the hand-rolled front-end) -------------------
  gpu::DevPtr remote_alloc(dmpi::Mpi& mpi, dmpi::Rank d, std::uint64_t bytes,
                           Result* status = nullptr) {
    mpi.send(comm(), d, kRequestTag,
             WireWriter{}.op(Op::kMemAlloc).u32(kResponseTag).u64(bytes).finish());
    WireReader r(mpi.recv(comm(), d, kResponseTag));
    const Result res = r.result();
    if (status != nullptr) *status = res;
    return r.u64();
  }

  Result remote_free(dmpi::Mpi& mpi, dmpi::Rank d, gpu::DevPtr ptr) {
    mpi.send(comm(), d, kRequestTag,
             WireWriter{}.op(Op::kMemFree).u32(kResponseTag).u64(ptr).finish());
    return WireReader(mpi.recv(comm(), d, kResponseTag)).result();
  }

  Result remote_htod(dmpi::Mpi& mpi, dmpi::Rank d, gpu::DevPtr dst,
                     util::Buffer data,
                     TransferConfig config = TransferConfig::pipeline_adaptive()) {
    mpi.send(comm(), d, kRequestTag,
             WireWriter{}
                 .op(Op::kMemcpyHtoD)
                 .u32(kResponseTag)
                 .u64(dst)
                 .u64(data.size())
                 .transfer_config(config)
                 .finish());
    proto::send_blocks(mpi, comm(), d, std::move(data), config);
    return WireReader(mpi.recv(comm(), d, kResponseTag)).result();
  }

  Result remote_dtoh(dmpi::Mpi& mpi, dmpi::Rank d, gpu::DevPtr src,
                     std::uint64_t bytes, util::Buffer* out,
                     TransferConfig config = TransferConfig::pipeline_adaptive()) {
    mpi.send(comm(), d, kRequestTag,
             WireWriter{}
                 .op(Op::kMemcpyDtoH)
                 .u32(kResponseTag)
                 .u64(src)
                 .u64(bytes)
                 .transfer_config(config)
                 .finish());
    const Result pre = WireReader(mpi.recv(comm(), d, kResponseTag)).result();
    if (pre != Result::kSuccess) return pre;
    *out = proto::recv_assemble(mpi, comm(), d, bytes, config);
    return WireReader(mpi.recv(comm(), d, kResponseTag)).result();
  }

  Result remote_launch(dmpi::Mpi& mpi, dmpi::Rank d, const std::string& name,
                       const gpu::KernelArgs& args) {
    mpi.send(comm(), d, kRequestTag,
             WireWriter{}
                 .op(Op::kKernelRun)
                 .u32(kResponseTag)
                 .str(name)
                 .launch_config({})
                 .kernel_args(args)
                 .finish());
    return WireReader(mpi.recv(comm(), d, kResponseTag)).result();
  }

 private:
  static std::vector<net::NodeId> make_nodes(int n) {
    std::vector<net::NodeId> nodes(static_cast<std::size_t>(n));
    std::iota(nodes.begin(), nodes.end(), 0);
    return nodes;
  }

  sim::Engine engine_;
  net::Fabric fabric_;
  dmpi::World world_;
  std::shared_ptr<gpu::KernelRegistry> registry_;
  std::vector<std::unique_ptr<gpu::Device>> devices_;
  std::vector<std::unique_ptr<Daemon>> daemons_;
};

TEST(Daemon, AllocAndFree) {
  DaemonBed bed;
  bed.run([&](dmpi::Mpi& mpi, sim::Context&) {
    Result status = Result::kInvalidValue;
    const gpu::DevPtr p = bed.remote_alloc(mpi, 1, 4096, &status);
    EXPECT_EQ(status, Result::kSuccess);
    EXPECT_NE(p, gpu::kNullDevPtr);
    EXPECT_EQ(bed.device().memory_used(), 4096u);
    EXPECT_EQ(bed.remote_free(mpi, 1, p), Result::kSuccess);
    EXPECT_EQ(bed.device().memory_used(), 0u);
  });
}

TEST(Daemon, AllocFailureIsRelayed) {
  DaemonBed bed;
  bed.run([&](dmpi::Mpi& mpi, sim::Context&) {
    Result status = Result::kSuccess;
    (void)bed.remote_alloc(mpi, 1, 1ull << 60, &status);
    EXPECT_EQ(status, Result::kOutOfMemory);
  });
}

TEST(Daemon, HtoDWritesDeviceMemory) {
  DaemonBed bed;
  bed.run([&](dmpi::Mpi& mpi, sim::Context&) {
    const gpu::DevPtr p = bed.remote_alloc(mpi, 1, 24);
    std::vector<double> host{1.0, 2.0, 3.0};
    EXPECT_EQ(bed.remote_htod(mpi, 1, p,
                              util::Buffer::of<double>(
                                  std::span<const double>(host))),
              Result::kSuccess);
    auto view = bed.device().span_as<double>(p, 3);
    EXPECT_EQ(view[0], 1.0);
    EXPECT_EQ(view[2], 3.0);
  });
}

TEST(Daemon, HtoDToInvalidPointerReportsError) {
  DaemonBed bed;
  bed.run([&](dmpi::Mpi& mpi, sim::Context&) {
    EXPECT_EQ(bed.remote_htod(mpi, 1, 0xbad, util::Buffer::backed_zero(64)),
              Result::kInvalidValue);
  });
}

TEST(Daemon, DtoHReadsBack) {
  DaemonBed bed;
  bed.run([&](dmpi::Mpi& mpi, sim::Context&) {
    const gpu::DevPtr p = bed.remote_alloc(mpi, 1, 16);
    bed.device().span_as<double>(p, 2)[0] = 6.5;
    bed.device().span_as<double>(p, 2)[1] = -1.0;
    util::Buffer out;
    EXPECT_EQ(bed.remote_dtoh(mpi, 1, p, 16, &out), Result::kSuccess);
    EXPECT_EQ(out.as<double>()[0], 6.5);
    EXPECT_EQ(out.as<double>()[1], -1.0);
  });
}

TEST(Daemon, DtoHInvalidRangeFailsBeforeData) {
  DaemonBed bed;
  bed.run([&](dmpi::Mpi& mpi, sim::Context&) {
    util::Buffer out;
    EXPECT_EQ(bed.remote_dtoh(mpi, 1, 0xbad, 64, &out),
              Result::kInvalidValue);
    EXPECT_TRUE(out.empty());
  });
}

TEST(Daemon, FullListingTwoWorkflow) {
  // The paper's Listing 2 sequence: alloc, copy in, run kernel, copy out,
  // free — remote end to end with verified numerics.
  DaemonBed bed;
  bed.run([&](dmpi::Mpi& mpi, sim::Context&) {
    const std::int64_t n = 512;
    const auto bytes = static_cast<std::uint64_t>(n) * 8;
    const gpu::DevPtr a = bed.remote_alloc(mpi, 1, bytes);
    const gpu::DevPtr b = bed.remote_alloc(mpi, 1, bytes);
    const gpu::DevPtr c = bed.remote_alloc(mpi, 1, bytes);

    std::vector<double> ha(static_cast<std::size_t>(n));
    std::vector<double> hb(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < ha.size(); ++i) {
      ha[i] = static_cast<double>(i);
      hb[i] = 1000.0 - static_cast<double>(i);
    }
    ASSERT_EQ(bed.remote_htod(mpi, 1, a,
                              util::Buffer::of<double>(
                                  std::span<const double>(ha))),
              Result::kSuccess);
    ASSERT_EQ(bed.remote_htod(mpi, 1, b,
                              util::Buffer::of<double>(
                                  std::span<const double>(hb))),
              Result::kSuccess);
    ASSERT_EQ(bed.remote_launch(mpi, 1, "vector_add_f64", {a, b, c, n}),
              Result::kSuccess);
    util::Buffer out;
    ASSERT_EQ(bed.remote_dtoh(mpi, 1, c, bytes, &out), Result::kSuccess);
    for (double v : out.as<double>()) EXPECT_DOUBLE_EQ(v, 1000.0);
    EXPECT_EQ(bed.remote_free(mpi, 1, a), Result::kSuccess);
    EXPECT_EQ(bed.remote_free(mpi, 1, b), Result::kSuccess);
    EXPECT_EQ(bed.remote_free(mpi, 1, c), Result::kSuccess);
  });
}

TEST(Daemon, UnknownKernelReported) {
  DaemonBed bed;
  bed.run([&](dmpi::Mpi& mpi, sim::Context&) {
    EXPECT_EQ(bed.remote_launch(mpi, 1, "nope", {}), Result::kNotFound);
  });
}

TEST(Daemon, DeviceInfo) {
  DaemonBed bed;
  bed.run([&](dmpi::Mpi& mpi, sim::Context&) {
    mpi.send(bed.comm(), 1, kRequestTag,
             WireWriter{}.op(Op::kDeviceInfo).u32(kResponseTag).finish());
    WireReader r(mpi.recv(bed.comm(), 1, kResponseTag));
    EXPECT_EQ(r.result(), Result::kSuccess);
    EXPECT_EQ(r.str(), "Tesla C1060 (simulated)");
    EXPECT_EQ(r.u64(), bed.device().params().memory_bytes);
    EXPECT_EQ(r.u64(), bed.device().params().memory_bytes);  // all free
  });
}

TEST(Daemon, BrokenDeviceReportsEccEverywhere) {
  DaemonBed bed;
  bed.run([&](dmpi::Mpi& mpi, sim::Context&) {
    const gpu::DevPtr p = bed.remote_alloc(mpi, 1, 64);
    bed.device().mark_broken();
    Result status = Result::kSuccess;
    (void)bed.remote_alloc(mpi, 1, 64, &status);
    EXPECT_EQ(status, Result::kEccError);
    EXPECT_EQ(bed.remote_htod(mpi, 1, p, util::Buffer::backed_zero(64)),
              Result::kEccError);
    util::Buffer out;
    EXPECT_EQ(bed.remote_dtoh(mpi, 1, p, 64, &out), Result::kEccError);
    EXPECT_EQ(bed.remote_launch(mpi, 1, "fill_f64",
                                {p, std::int64_t{8}, 0.0}),
              Result::kEccError);
  });
}

TEST(Daemon, PeerSendMovesDataBetweenAccelerators) {
  DaemonBed bed(/*daemons=*/2);
  bed.run([&](dmpi::Mpi& mpi, sim::Context&) {
    const std::uint64_t bytes = 1_MiB;
    const gpu::DevPtr src = bed.remote_alloc(mpi, 1, bytes);
    const gpu::DevPtr dst = bed.remote_alloc(mpi, 2, bytes);
    // Fill the source device directly.
    auto view = bed.device(0).span_as<double>(src, bytes / 8);
    for (std::size_t i = 0; i < view.size(); ++i) {
      view[i] = static_cast<double>(i % 97);
    }
    mpi.send(bed.comm(), 1, kRequestTag,
             WireWriter{}
                 .op(Op::kPeerSend)
                 .u32(kResponseTag)
                 .u64(src)
                 .u64(bytes)
                 .u64(2)
                 .u64(dst)
                 .transfer_config(TransferConfig::pipeline(512_KiB))
                 .finish());
    EXPECT_EQ(WireReader(mpi.recv(bed.comm(), 1, kResponseTag)).result(),
              Result::kSuccess);
    auto peer_view = bed.device(1).span_as<double>(dst, bytes / 8);
    for (std::size_t i = 0; i < peer_view.size(); ++i) {
      ASSERT_EQ(peer_view[i], static_cast<double>(i % 97));
    }
  });
}

TEST(Daemon, PeerSendFromInvalidRangeFails) {
  DaemonBed bed(2);
  bed.run([&](dmpi::Mpi& mpi, sim::Context&) {
    mpi.send(bed.comm(), 1, kRequestTag,
             WireWriter{}
                 .op(Op::kPeerSend)
                 .u32(kResponseTag)
                 .u64(0xbad)
                 .u64(1024)
                 .u64(2)
                 .u64(0xbad2)
                 .transfer_config(TransferConfig::naive())
                 .finish());
    EXPECT_EQ(WireReader(mpi.recv(bed.comm(), 1, kResponseTag)).result(),
              Result::kInvalidValue);
  });
}

TEST(Daemon, ServesMultipleClientsSequentially) {
  // Two clients share one daemon; requests interleave at the queue.
  sim::Engine engine;
  net::Fabric fabric(engine, 3);
  dmpi::World world(engine, fabric, {0, 1, 2});
  auto registry = gpu::KernelRegistry::with_builtins();
  gpu::Device device(engine, gpu::tesla_c1060(), registry);
  Daemon daemon(device, world, 2);
  engine.spawn("daemon", [&](sim::Context& ctx) { daemon.run(ctx); });

  int done = 0;
  for (int c = 0; c < 2; ++c) {
    engine.spawn("client" + std::to_string(c), [&, c](sim::Context& ctx) {
      dmpi::Mpi mpi(world, ctx, c);
      for (int i = 0; i < 5; ++i) {
        mpi.send(world.world_comm(), 2, kRequestTag,
                 WireWriter{}.op(Op::kMemAlloc).u32(kResponseTag).u64(256).finish());
        WireReader r(mpi.recv(world.world_comm(), 2, kResponseTag));
        EXPECT_EQ(r.result(), Result::kSuccess);
      }
      ++done;
      if (done == 2) {
        mpi.send(world.world_comm(), 2, kRequestTag,
                 WireWriter{}.op(Op::kShutdown).u32(kResponseTag).finish());
        (void)mpi.recv(world.world_comm(), 2, kResponseTag);
      }
    });
  }
  engine.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(device.memory_used(), 10u * 256);
}

TEST(Daemon, RequestCounterTracks) {
  DaemonBed bed;
  bed.run([&](dmpi::Mpi& mpi, sim::Context&) {
    (void)bed.remote_alloc(mpi, 1, 64);
    (void)bed.remote_alloc(mpi, 1, 64);
  });
  // 2 allocs + 1 shutdown.
  EXPECT_EQ(bed.daemon().requests_served(), 3u);
}

}  // namespace
}  // namespace dacc::daemon
