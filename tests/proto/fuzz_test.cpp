// Robustness: the wire decoder must reject arbitrary garbage with clean
// exceptions (never crash, never read out of bounds), and random
// payload/config combinations must round-trip through the block engine.
#include <gtest/gtest.h>

#include "arm/arm.hpp"
#include "daemon/daemon.hpp"
#include "proto/transfer.hpp"
#include "proto/wire.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dacc::proto {
namespace {

TEST(WireFuzz, RandomBytesNeverCrashTheDecoder) {
  util::Rng rng(0xf022);
  int clean_throws = 0;
  for (int round = 0; round < 2000; ++round) {
    const std::size_t len = rng.next_below(64);
    std::vector<std::byte> junk(len);
    for (auto& b : junk) {
      b = static_cast<std::byte>(rng.next_below(256));
    }
    WireReader r(util::Buffer::backed(std::move(junk)));
    try {
      // Interpret as a middleware request, which is how the daemon reads.
      const Op op = r.op();
      (void)op;
      (void)r.u64();
      (void)r.u64();
      (void)r.transfer_config();
      (void)r.str();
      (void)r.kernel_args();
    } catch (const std::runtime_error&) {
      ++clean_throws;  // truncation / bad tags are reported, not UB
    }
  }
  EXPECT_GT(clean_throws, 0);
}

TEST(WireFuzz, EveryTruncationPointThrows) {
  // A valid message truncated at every byte boundary must throw cleanly.
  const util::Buffer full = WireWriter{}
                                .op(Op::kKernelRun)
                                .str("la_dgemm")
                                .launch_config({})
                                .kernel_args({gpu::DevPtr{1}, 2.0,
                                              std::int64_t{3}})
                                .finish();
  for (std::uint64_t cut = 0; cut < full.size(); ++cut) {
    WireReader r(full.slice(0, cut));
    EXPECT_THROW(
        {
          (void)r.op();
          (void)r.str();
          (void)r.launch_config();
          (void)r.kernel_args();
        },
        std::runtime_error)
        << "cut at " << cut;
  }
}

// Consume the liveness frame header (op + reply tag) the way the ARM's
// dispatch loop does before handing the reader to the payload decoder.
WireReader payload_reader(const util::Buffer& frame) {
  WireReader r(frame.slice(0, frame.size()));
  (void)r.u32();  // op
  (void)r.u32();  // reply tag
  return r;
}

TEST(WireFuzz, LivenessMessagesRoundTrip) {
  const arm::Heartbeat hb{.daemon_rank = 7, .seq = 42, .device_ok = false,
                          .sent_at = 3'500'000};
  util::Buffer hb_frame = hb.encode();
  WireReader hr = payload_reader(hb_frame);
  const arm::Heartbeat hb2 = arm::Heartbeat::decode(hr);
  EXPECT_EQ(hb2.daemon_rank, hb.daemon_rank);
  EXPECT_EQ(hb2.seq, hb.seq);
  EXPECT_EQ(hb2.device_ok, hb.device_ok);
  EXPECT_EQ(hb2.sent_at, hb.sent_at);

  const arm::SweepRequest sweep{.period = 1_ms, .miss_threshold = 3,
                                .fresh = true};
  util::Buffer sw_frame = sweep.encode();
  WireReader sr = payload_reader(sw_frame);
  const arm::SweepRequest sweep2 = arm::SweepRequest::decode(sr);
  EXPECT_EQ(sweep2.period, sweep.period);
  EXPECT_EQ(sweep2.miss_threshold, sweep.miss_threshold);
  EXPECT_EQ(sweep2.fresh, sweep.fresh);

  // Revoke notices are unsolicited pushes: payload only, no op header.
  const arm::RevokeNotice notice{.daemon_rank = 3, .lease_id = 99,
                                 .job = 12, .revoked_at = 5'000'000};
  WireReader nr(notice.encode());
  const arm::RevokeNotice notice2 = arm::RevokeNotice::decode(nr);
  EXPECT_EQ(notice2.daemon_rank, notice.daemon_rank);
  EXPECT_EQ(notice2.lease_id, notice.lease_id);
  EXPECT_EQ(notice2.job, notice.job);
  EXPECT_EQ(notice2.revoked_at, notice.revoked_at);

  const arm::ReplayReport report{.failed_rank = 2, .replacement_rank = 5,
                                 .job = 12, .replayed_ops = 17,
                                 .replayed_bytes = 64_MiB};
  util::Buffer rp_frame = report.encode(/*reply_tag=*/321);
  WireReader rr = payload_reader(rp_frame);
  const arm::ReplayReport report2 = arm::ReplayReport::decode(rr);
  EXPECT_EQ(report2.failed_rank, report.failed_rank);
  EXPECT_EQ(report2.replacement_rank, report.replacement_rank);
  EXPECT_EQ(report2.job, report.job);
  EXPECT_EQ(report2.replayed_ops, report.replayed_ops);
  EXPECT_EQ(report2.replayed_bytes, report.replayed_bytes);
}

TEST(WireFuzz, LivenessTruncationThrowsAtEveryByte) {
  // Each frame truncated at every byte boundary must throw from its own
  // decoder (after the op + reply-tag header the dispatch loop consumes).
  auto expect_all_cuts_throw = [](const util::Buffer& full, auto decode,
                                  bool header) {
    for (std::uint64_t cut = 0; cut < full.size(); ++cut) {
      WireReader r(full.slice(0, cut));
      EXPECT_THROW(
          {
            if (header) {
              (void)r.u32();
              (void)r.u32();
            }
            (void)decode(r);
          },
          std::runtime_error)
          << "cut at " << cut;
    }
  };
  expect_all_cuts_throw(arm::Heartbeat{.daemon_rank = 1, .seq = 9}.encode(),
                        [](WireReader& r) { return arm::Heartbeat::decode(r); },
                        /*header=*/true);
  expect_all_cuts_throw(
      arm::SweepRequest{.period = 1_ms, .miss_threshold = 3}.encode(),
      [](WireReader& r) { return arm::SweepRequest::decode(r); },
      /*header=*/true);
  expect_all_cuts_throw(
      arm::ReplayReport{.failed_rank = 1, .replacement_rank = 2}.encode(7),
      [](WireReader& r) { return arm::ReplayReport::decode(r); },
      /*header=*/true);
  // RevokeNotice carries a versioned suffix: a cut at the legacy boundary
  // (exactly the four u64 words, no reason) is a VALID v0 frame and decodes
  // as a failure revocation; every other cut must still throw.
  const util::Buffer revoke_full =
      arm::RevokeNotice{.daemon_rank = 1, .lease_id = 2,
                        .reason = arm::kRevokePreempted}
          .encode();
  constexpr std::uint64_t kLegacyRevokeBytes = 4 * 8;
  for (std::uint64_t cut = 0; cut < revoke_full.size(); ++cut) {
    WireReader r(revoke_full.slice(0, cut));
    if (cut == kLegacyRevokeBytes) {
      const arm::RevokeNotice legacy = arm::RevokeNotice::decode(r);
      EXPECT_EQ(legacy.reason, arm::kRevokeFailure);
      continue;
    }
    EXPECT_THROW((void)arm::RevokeNotice::decode(r), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(WireFuzz, CorruptedLivenessFramesNeverCrash) {
  util::Rng rng(0xbeef);
  for (int round = 0; round < 500; ++round) {
    util::Buffer frame =
        arm::Heartbeat{.daemon_rank = 4, .seq = rng.next_u64()}.encode();
    std::vector<std::byte> bytes(frame.bytes().begin(), frame.bytes().end());
    // Corrupt 1-4 random bytes (possibly the header), then truncate maybe.
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.next_below(bytes.size())] =
          static_cast<std::byte>(rng.next_below(256));
    }
    if (rng.next_below(4) == 0) {
      bytes.resize(rng.next_below(bytes.size() + 1));
    }
    WireReader r(util::Buffer::backed(std::move(bytes)));
    try {
      (void)r.u32();
      (void)r.u32();
      const arm::Heartbeat hb = arm::Heartbeat::decode(r);
      (void)hb;  // garbage values are fine; UB / crashes are not
    } catch (const std::runtime_error&) {
      // clean rejection
    }
  }
}

TEST(DaemonFuzz, GarbageFramesAreCountedNotFatal) {
  // Blast a live daemon with random frames on the request tag: it must
  // count them as malformed (or answer kInvalidValue) and keep serving
  // well-formed requests interleaved with the junk.
  sim::Engine engine;
  net::Fabric fabric(engine, 2);
  dmpi::World world(engine, fabric, {0, 1});
  auto registry = gpu::KernelRegistry::with_builtins();
  gpu::Device device(engine, gpu::tesla_c1060(), registry, true);
  daemon::Daemon daemon(device, world, /*self=*/1);
  engine.spawn("daemon", [&](sim::Context& ctx) { daemon.run(ctx); });
  engine.spawn("client", [&](sim::Context& ctx) {
    dmpi::Mpi mpi(world, ctx, 0);
    util::Rng rng(0xfeed);
    for (int round = 0; round < 300; ++round) {
      const std::size_t len = rng.next_below(48);
      std::vector<std::byte> junk(len);
      for (auto& b : junk) {
        b = static_cast<std::byte>(rng.next_below(256));
      }
      if (len >= 4) {
        // Two ops would stall the fuzz loop rather than exercise the error
        // path: kShutdown stops the daemon, kMemcpyHtoD makes it wait for
        // payload blocks we will never send. Mask the header away from both.
        const auto first = static_cast<std::uint32_t>(junk[0]) |
                           (static_cast<std::uint32_t>(junk[1]) << 8) |
                           (static_cast<std::uint32_t>(junk[2]) << 16) |
                           (static_cast<std::uint32_t>(junk[3]) << 24);
        if (first == static_cast<std::uint32_t>(Op::kShutdown) ||
            first == static_cast<std::uint32_t>(Op::kMemcpyHtoD)) {
          junk[3] = std::byte{0x7f};
        }
      }
      mpi.send(world.world_comm(), 1, kRequestTag,
               util::Buffer::backed(std::move(junk)));
      if (round % 60 == 0) {
        // The daemon still answers a well-formed request after the junk.
        mpi.send(world.world_comm(), 1, kRequestTag,
                 WireWriter{}.op(Op::kMemAlloc).u32(kResponseTag).u64(256)
                     .finish());
        WireReader r(mpi.recv(world.world_comm(), 1, kResponseTag));
        ASSERT_EQ(r.result(), gpu::Result::kSuccess);
        const gpu::DevPtr p = r.u64();
        mpi.send(world.world_comm(), 1, kRequestTag,
                 WireWriter{}.op(Op::kMemFree).u32(kResponseTag).u64(p)
                     .finish());
        ASSERT_EQ(WireReader(mpi.recv(world.world_comm(), 1, kResponseTag))
                      .result(),
                  gpu::Result::kSuccess);
      }
    }
    mpi.send(world.world_comm(), 1, kRequestTag,
             WireWriter{}.op(Op::kShutdown).u32(kResponseTag).finish());
    (void)mpi.recv(world.world_comm(), 1, kResponseTag);
  });
  engine.run();
  EXPECT_GT(daemon.malformed_requests(), 0u);
  EXPECT_EQ(device.memory_used(), 0u);
}

// --- kBatch frame fuzzing against a live daemon ----------------------------

namespace {
/// Minimal daemon harness: spawns a daemon on rank 1 and runs `client` as
/// rank 0, returning the daemon's malformed count and the device.
struct BatchFuzzRig {
  sim::Engine engine;
  net::Fabric fabric{engine, 2};
  dmpi::World world{engine, fabric, {0, 1}};
  std::shared_ptr<gpu::KernelRegistry> registry =
      gpu::KernelRegistry::with_builtins();
  gpu::Device device{engine, gpu::tesla_c1060(), registry, true};
  daemon::Daemon daemon{device, world, /*self=*/1};

  void run(std::function<void(dmpi::Mpi&, const dmpi::Comm&)> client) {
    engine.spawn("daemon", [&](sim::Context& ctx) { daemon.run(ctx); });
    engine.spawn("client", [&, client](sim::Context& ctx) {
      dmpi::Mpi mpi(world, ctx, 0);
      client(mpi, world.world_comm());
      mpi.send(world.world_comm(), 1, kRequestTag,
               WireWriter{}.op(Op::kShutdown).u32(kResponseTag).finish());
      (void)mpi.recv(world.world_comm(), 1, kResponseTag);
    });
    engine.run();
  }
};

/// A well-formed 3-sub-request batch frame (alloc + kernel-create + run).
util::Buffer valid_batch_frame(int reply_tag) {
  WireWriter w;
  w.op(Op::kBatch).u32(static_cast<std::uint32_t>(reply_tag));
  w.u32(3);
  w.u32(static_cast<std::uint32_t>(Op::kMemAlloc)).u64(4096);
  w.u32(static_cast<std::uint32_t>(Op::kKernelCreate)).str("dscal");
  w.u32(static_cast<std::uint32_t>(Op::kKernelRun))
      .str("dscal")
      .launch_config({})
      .kernel_args({std::int64_t{16}, 2.0, gpu::DevPtr{0}});
  return w.finish();
}
}  // namespace

TEST(DaemonFuzz, TruncatedBatchIsRejectedWholeNeverPartiallyExecuted) {
  // Every proper truncation of a valid batch frame must produce exactly one
  // whole-batch rejection (a bare kInvalidValue status) — and since the
  // first sub-request is a complete kMemAlloc, any partial execution before
  // the decode failure would leak device memory.
  BatchFuzzRig rig;
  rig.run([&](dmpi::Mpi& mpi, const dmpi::Comm& comm) {
    const util::Buffer full = valid_batch_frame(kResponseTag);
    for (std::uint64_t cut = 8; cut < full.size(); ++cut) {
      mpi.send(comm, 1, kRequestTag, full.slice(0, cut));
      WireReader r(mpi.recv(comm, 1, kResponseTag));
      EXPECT_EQ(r.result(), gpu::Result::kInvalidValue) << "cut at " << cut;
      EXPECT_TRUE(r.exhausted()) << "cut at " << cut;  // bare status only
      EXPECT_EQ(rig.device.memory_used(), 0u) << "cut at " << cut;
    }
  });
  EXPECT_GT(rig.daemon.malformed_requests(), 0u);
  EXPECT_EQ(rig.device.memory_used(), 0u);
}

TEST(DaemonFuzz, BatchCountOverflowAndGarbageBodiesRejected) {
  BatchFuzzRig rig;
  rig.run([&](dmpi::Mpi& mpi, const dmpi::Comm& comm) {
    // Sub-request count far beyond the frame's bytes.
    mpi.send(comm, 1, kRequestTag,
             WireWriter{}
                 .op(Op::kBatch)
                 .u32(kResponseTag)
                 .u32(0x00ffffff)
                 .u64(0)
                 .finish());
    EXPECT_EQ(WireReader(mpi.recv(comm, 1, kResponseTag)).result(),
              gpu::Result::kInvalidValue);
    // Zero sub-requests.
    mpi.send(comm, 1, kRequestTag,
             WireWriter{}.op(Op::kBatch).u32(kResponseTag).u32(0).finish());
    EXPECT_EQ(WireReader(mpi.recv(comm, 1, kResponseTag)).result(),
              gpu::Result::kInvalidValue);
    // Random junk bodies behind a valid batch header: one clean rejection
    // each, daemon keeps serving.
    util::Rng rng(0xba7c);
    for (int round = 0; round < 200; ++round) {
      WireWriter w;
      w.op(Op::kBatch).u32(kResponseTag);
      const std::size_t len = rng.next_below(40);
      for (std::size_t i = 0; i < len; ++i) {
        w.u32(static_cast<std::uint32_t>(rng.next_below(256)));
      }
      mpi.send(comm, 1, kRequestTag, w.finish());
      WireReader r(mpi.recv(comm, 1, kResponseTag));
      const gpu::Result status = r.result();
      if (status == gpu::Result::kSuccess) {
        // Only an (astronomically unlikely) fully valid batch may succeed;
        // anything else must be a whole-batch rejection.
        ADD_FAILURE() << "random body decoded as a valid batch";
      }
      EXPECT_EQ(status, gpu::Result::kInvalidValue) << "round " << round;
    }
    EXPECT_EQ(rig.device.memory_used(), 0u);
  });
  EXPECT_GE(rig.daemon.malformed_requests(), 202u);
}

TEST(DaemonFuzz, InnerTraceFlagInBatchRejected) {
  // The batch header owns the stream's trace context; a trace-flagged inner
  // op word must fail the whole frame.
  BatchFuzzRig rig;
  rig.run([&](dmpi::Mpi& mpi, const dmpi::Comm& comm) {
    WireWriter w;
    w.op(Op::kBatch).u32(kResponseTag);
    w.u32(2);
    w.u32(static_cast<std::uint32_t>(Op::kMemAlloc)).u64(1024);
    w.u32(static_cast<std::uint32_t>(Op::kMemAlloc) | kTraceContextFlag)
        .u64(1024);
    mpi.send(comm, 1, kRequestTag, w.finish());
    WireReader r(mpi.recv(comm, 1, kResponseTag));
    EXPECT_EQ(r.result(), gpu::Result::kInvalidValue);
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(rig.device.memory_used(), 0u);  // sub-request 0 not executed
  });
  EXPECT_EQ(rig.daemon.malformed_requests(), 1u);
}

TEST(DaemonFuzz, WellFormedBatchExecutesInOrderAndRepliesOnce) {
  BatchFuzzRig rig;
  rig.run([&](dmpi::Mpi& mpi, const dmpi::Comm& comm) {
    // Batch 1: a lone alloc (legal on the wire, results in a count frame).
    WireWriter a;
    a.op(Op::kBatch).u32(kResponseTag).u32(1);
    a.u32(static_cast<std::uint32_t>(Op::kMemAlloc)).u64(4096);
    mpi.send(comm, 1, kRequestTag, a.finish());
    WireReader ar(mpi.recv(comm, 1, kResponseTag));
    ASSERT_EQ(ar.u32(), 1u);
    ASSERT_EQ(static_cast<gpu::Result>(ar.u32()), gpu::Result::kSuccess);
    const gpu::DevPtr p = ar.u64();
    EXPECT_NE(p, gpu::kNullDevPtr);
    EXPECT_TRUE(ar.exhausted());
    EXPECT_EQ(rig.device.memory_used(), 4096u);

    // Batch 2: create + run + free against the returned pointer, answered
    // by exactly one completion frame with one (status, ptr) per sub-op.
    WireWriter w;
    w.op(Op::kBatch).u32(kResponseTag).u32(3);
    w.u32(static_cast<std::uint32_t>(Op::kKernelCreate)).str("dscal");
    w.u32(static_cast<std::uint32_t>(Op::kKernelRun))
        .str("dscal")
        .launch_config({})
        .kernel_args({std::int64_t{16}, 2.0, p});
    w.u32(static_cast<std::uint32_t>(Op::kMemFree)).u64(p);
    mpi.send(comm, 1, kRequestTag, w.finish());
    WireReader r(mpi.recv(comm, 1, kResponseTag));
    ASSERT_EQ(r.u32(), 3u);
    EXPECT_EQ(static_cast<gpu::Result>(r.u32()), gpu::Result::kSuccess);
    EXPECT_EQ(r.u64(), gpu::kNullDevPtr);  // kernel-create carries no ptr
    EXPECT_EQ(static_cast<gpu::Result>(r.u32()), gpu::Result::kSuccess);
    EXPECT_EQ(r.u64(), gpu::kNullDevPtr);
    EXPECT_EQ(static_cast<gpu::Result>(r.u32()), gpu::Result::kSuccess);
    EXPECT_EQ(r.u64(), gpu::kNullDevPtr);
    EXPECT_TRUE(r.exhausted());
  });
  EXPECT_EQ(rig.daemon.malformed_requests(), 0u);
  EXPECT_EQ(rig.device.memory_used(), 0u);
}

TEST(TransferProperty, RandomSizesAndBlocksRoundTrip) {
  util::Rng rng(77);
  for (int round = 0; round < 25; ++round) {
    const std::uint64_t total = 1 + rng.next_below(512 * 1024);
    TransferConfig config;
    switch (rng.next_below(3)) {
      case 0:
        config = TransferConfig::naive();
        break;
      case 1:
        config = TransferConfig::pipeline(
            1024 * (1 + rng.next_below(256)));
        break;
      default:
        config = TransferConfig::pipeline_adaptive();
        break;
    }
    config.gpudirect = rng.next_below(2) == 0;

    std::vector<std::byte> payload(total);
    for (auto& b : payload) {
      b = static_cast<std::byte>(rng.next_below(256));
    }

    sim::Engine engine;
    net::Fabric fabric(engine, 2);
    dmpi::World world(engine, fabric, {0, 1});
    util::Buffer got;
    engine.spawn("tx", [&](sim::Context& ctx) {
      dmpi::Mpi mpi(world, ctx, 0);
      send_blocks(mpi, world.world_comm(), 1,
                  util::Buffer::backed(std::vector<std::byte>(payload)),
                  config);
    });
    engine.spawn("rx", [&](sim::Context& ctx) {
      dmpi::Mpi mpi(world, ctx, 1);
      got = recv_assemble(mpi, world.world_comm(), 0, total, config);
    });
    engine.run();
    ASSERT_EQ(got.size(), total) << "round " << round;
    EXPECT_TRUE(
        std::equal(payload.begin(), payload.end(), got.bytes().begin()))
        << "round " << round;
  }
}

TEST(TransferProperty, PlanCoversEveryByteExactlyOnce) {
  util::Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t total = rng.next_below(1_MiB);
    const std::uint64_t block = 1 + rng.next_below(64_KiB);
    const BlockPlan plan(total, TransferConfig::pipeline(block));
    std::uint64_t covered = 0;
    std::uint64_t expected_offset = 0;
    for (std::size_t i = 0; i < plan.count(); ++i) {
      EXPECT_EQ(plan.offset(i), expected_offset);
      covered += plan.size(i);
      expected_offset += plan.size(i);
      EXPECT_GT(plan.size(i), 0u);
      EXPECT_LE(plan.size(i), plan.block_bytes());
    }
    EXPECT_EQ(covered, total);
  }
}

}  // namespace
}  // namespace dacc::proto
