// Robustness: the wire decoder must reject arbitrary garbage with clean
// exceptions (never crash, never read out of bounds), and random
// payload/config combinations must round-trip through the block engine.
#include <gtest/gtest.h>

#include "proto/transfer.hpp"
#include "proto/wire.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dacc::proto {
namespace {

TEST(WireFuzz, RandomBytesNeverCrashTheDecoder) {
  util::Rng rng(0xf022);
  int clean_throws = 0;
  for (int round = 0; round < 2000; ++round) {
    const std::size_t len = rng.next_below(64);
    std::vector<std::byte> junk(len);
    for (auto& b : junk) {
      b = static_cast<std::byte>(rng.next_below(256));
    }
    WireReader r(util::Buffer::backed(std::move(junk)));
    try {
      // Interpret as a middleware request, which is how the daemon reads.
      const Op op = r.op();
      (void)op;
      (void)r.u64();
      (void)r.u64();
      (void)r.transfer_config();
      (void)r.str();
      (void)r.kernel_args();
    } catch (const std::runtime_error&) {
      ++clean_throws;  // truncation / bad tags are reported, not UB
    }
  }
  EXPECT_GT(clean_throws, 0);
}

TEST(WireFuzz, EveryTruncationPointThrows) {
  // A valid message truncated at every byte boundary must throw cleanly.
  const util::Buffer full = WireWriter{}
                                .op(Op::kKernelRun)
                                .str("la_dgemm")
                                .launch_config({})
                                .kernel_args({gpu::DevPtr{1}, 2.0,
                                              std::int64_t{3}})
                                .finish();
  for (std::uint64_t cut = 0; cut < full.size(); ++cut) {
    WireReader r(full.slice(0, cut));
    EXPECT_THROW(
        {
          (void)r.op();
          (void)r.str();
          (void)r.launch_config();
          (void)r.kernel_args();
        },
        std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(TransferProperty, RandomSizesAndBlocksRoundTrip) {
  util::Rng rng(77);
  for (int round = 0; round < 25; ++round) {
    const std::uint64_t total = 1 + rng.next_below(512 * 1024);
    TransferConfig config;
    switch (rng.next_below(3)) {
      case 0:
        config = TransferConfig::naive();
        break;
      case 1:
        config = TransferConfig::pipeline(
            1024 * (1 + rng.next_below(256)));
        break;
      default:
        config = TransferConfig::pipeline_adaptive();
        break;
    }
    config.gpudirect = rng.next_below(2) == 0;

    std::vector<std::byte> payload(total);
    for (auto& b : payload) {
      b = static_cast<std::byte>(rng.next_below(256));
    }

    sim::Engine engine;
    net::Fabric fabric(engine, 2);
    dmpi::World world(engine, fabric, {0, 1});
    util::Buffer got;
    engine.spawn("tx", [&](sim::Context& ctx) {
      dmpi::Mpi mpi(world, ctx, 0);
      send_blocks(mpi, world.world_comm(), 1,
                  util::Buffer::backed(std::vector<std::byte>(payload)),
                  config);
    });
    engine.spawn("rx", [&](sim::Context& ctx) {
      dmpi::Mpi mpi(world, ctx, 1);
      got = recv_assemble(mpi, world.world_comm(), 0, total, config);
    });
    engine.run();
    ASSERT_EQ(got.size(), total) << "round " << round;
    EXPECT_TRUE(
        std::equal(payload.begin(), payload.end(), got.bytes().begin()))
        << "round " << round;
  }
}

TEST(TransferProperty, PlanCoversEveryByteExactlyOnce) {
  util::Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t total = rng.next_below(1_MiB);
    const std::uint64_t block = 1 + rng.next_below(64_KiB);
    const BlockPlan plan(total, TransferConfig::pipeline(block));
    std::uint64_t covered = 0;
    std::uint64_t expected_offset = 0;
    for (std::size_t i = 0; i < plan.count(); ++i) {
      EXPECT_EQ(plan.offset(i), expected_offset);
      covered += plan.size(i);
      expected_offset += plan.size(i);
      EXPECT_GT(plan.size(i), 0u);
      EXPECT_LE(plan.size(i), plan.block_bytes());
    }
    EXPECT_EQ(covered, total);
  }
}

}  // namespace
}  // namespace dacc::proto
