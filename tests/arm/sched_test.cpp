// Typed resource scheduler (DESIGN.md §13): device-class and memory
// constraints, gang vs partial grants, priority-ordered waiting, and
// topology-aware placement. Registered per backend (coroutine / thread /
// parallel) so every scheduling decision is exercised under all three
// execution models.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "arm/arm.hpp"
#include "common/testbed.hpp"
#include "gpu/device.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

namespace dacc::arm {
namespace {

using dacc::testing::run_job;
using dacc::testing::small_cluster;

/// Two C1060s (kind "gpu", 4 GiB) plus one MIC (kind "mic", 8 GiB).
rt::ClusterConfig mixed_pool_cluster() {
  rt::ClusterConfig c = small_cluster(/*cns=*/1, /*acs=*/3);
  c.accelerator_devices = {gpu::tesla_c1060(), gpu::tesla_c1060(),
                           gpu::mic_knc()};
  return c;
}

TEST(Sched, KindConstraintSelectsDeviceClass) {
  rt::Cluster cluster(mixed_pool_cluster());
  const dmpi::Rank mic_rank = cluster.daemon_rank(2);
  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    const auto leases =
        arm.acquire(ResourceRequest{}.with_job(1).with_kind("mic"));
    ASSERT_EQ(leases.size(), 1u);
    EXPECT_EQ(leases[0].daemon_rank, mic_rank);
    // No MIC left: the kind filter must not fall back to the free GPUs.
    EXPECT_TRUE(arm.acquire(ResourceRequest{}.with_job(1).with_kind("mic"))
                    .empty());
    EXPECT_EQ(arm.stats().free, 2u);
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Sched, MemoryConstraintSkipsSmallDevices) {
  rt::Cluster cluster(mixed_pool_cluster());
  const dmpi::Rank mic_rank = cluster.daemon_rank(2);
  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    // 6 GiB rules out the 4 GiB C1060s; only the 8 GiB MIC qualifies.
    const auto big =
        arm.acquire(ResourceRequest{}.with_job(1).with_memory(6_GiB));
    ASSERT_EQ(big.size(), 1u);
    EXPECT_EQ(big[0].daemon_rank, mic_rank);
    // A small request is satisfied from the smallest adequate class.
    const auto small =
        arm.acquire(ResourceRequest{}.with_job(1).with_memory(1_GiB));
    ASSERT_EQ(small.size(), 1u);
    EXPECT_NE(small[0].daemon_rank, mic_rank);
    // More memory than any device exists: clean immediate failure.
    EXPECT_TRUE(
        arm.acquire(ResourceRequest{}.with_job(1).with_memory(64_GiB))
            .empty());
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Sched, GangAcquireIsAllOrNothing) {
  run_job(small_cluster(/*cns=*/1, /*acs=*/3), [](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    // Pin one slot so only 2 of 3 are free; a gang of 3 must not grab them.
    const auto pin = arm.acquire(ResourceRequest{}.with_job(7).with_count(1));
    ASSERT_EQ(pin.size(), 1u);
    EXPECT_TRUE(
        arm.acquire(ResourceRequest{}.with_job(1).with_count(3)).empty());
    const PoolStats s = arm.stats();
    EXPECT_EQ(s.free, 2u);  // the failed gang held nothing back
    EXPECT_EQ(s.assigned, 1u);
  });
}

TEST(Sched, NonGangAcquireGrantsPartially) {
  run_job(small_cluster(/*cns=*/1, /*acs=*/3), [](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    const auto leases = arm.acquire(
        ResourceRequest{}.with_job(1).with_count(4).with_gang(false));
    EXPECT_EQ(leases.size(), 3u);  // everything available, not nothing
    EXPECT_EQ(arm.stats().free, 0u);
  });
}

TEST(Sched, UnsatisfiableGangFailsFastEvenWhenWaiting) {
  run_job(small_cluster(/*cns=*/1, /*acs=*/3), [](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    // 5 > pool size: waiting would hang forever, so the ARM answers
    // kInsufficient at arrival instead of queueing.
    EXPECT_TRUE(
        arm.acquire(
               ResourceRequest{}.with_job(1).with_count(5).with_wait(true))
            .empty());
    EXPECT_EQ(arm.stats().queued_requests, 0u);
  });
}

TEST(Sched, RawPrioritiesAboveTheNamedClassesKeepStrictOrder) {
  // The wire allows any priority up to kMaxPriority, not just the four
  // labelled classes; the victim index buckets the full range, so strict
  // ordering must hold among raw values too.
  run_job(small_cluster(/*cns=*/1, /*acs=*/2), [](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    const auto held = arm.acquire(
        ResourceRequest{}.with_job(1).with_count(2).with_priority(5));
    ASSERT_EQ(held.size(), 2u);
    // 4 < 5: no victim; with wait == false the arrival fails clean.
    EXPECT_TRUE(
        arm.acquire(ResourceRequest{}.with_job(2).with_priority(4)).empty());
    EXPECT_EQ(arm.stats().preemptions, 0u);
    // kMaxPriority > 5: a strictly-lower-priority owner is evicted.
    const auto urgent = arm.acquire(
        ResourceRequest{}.with_job(3).with_priority(kMaxPriority));
    ASSERT_EQ(urgent.size(), 1u);
    EXPECT_EQ(arm.stats().preemptions, 1u);
  });
}

TEST(Sched, PriorityOrdersTheWaitQueue) {
  // Rank 0 holds the whole pool and releases one slot at 1 ms and the other
  // at 3 ms. Rank 1 queues a batch-class request first; rank 2 queues a
  // high-class request later. The high request must still be served first.
  rt::Cluster cluster(small_cluster(/*cns=*/3, /*acs=*/2));
  std::vector<SimTime> granted_at(3, 0);
  rt::JobSpec spec;
  spec.ranks = 3;
  spec.body = [&](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    const std::uint64_t jid = 100 + static_cast<std::uint64_t>(job.rank());
    if (job.rank() == 0) {
      // Hold at urgent so the high-class waiter queues instead of
      // preempting (preemption has its own suite, preempt_test.cpp).
      const auto leases = arm.acquire(ResourceRequest{}
                                          .with_job(jid)
                                          .with_count(2)
                                          .with_priority(kPriorityUrgent));
      ASSERT_EQ(leases.size(), 2u);
      job.ctx().wait_for(1_ms);
      EXPECT_EQ(arm.release(jid, leases[0]), ArmResult::kOk);
      job.ctx().wait_for(2_ms);
      EXPECT_EQ(arm.release(jid, leases[1]), ArmResult::kOk);
    } else if (job.rank() == 1) {
      job.ctx().wait_for(100_us);  // queues first...
      const auto leases = arm.acquire(ResourceRequest{}
                                          .with_job(jid)
                                          .with_wait(true)
                                          .with_priority(kPriorityBatch));
      ASSERT_EQ(leases.size(), 1u);
      granted_at[1] = job.ctx().now();
      EXPECT_EQ(arm.release_job(jid), ArmResult::kOk);
    } else {
      job.ctx().wait_for(200_us);  // ...but loses to the higher class
      const auto leases = arm.acquire(ResourceRequest{}
                                          .with_job(jid)
                                          .with_wait(true)
                                          .with_priority(kPriorityHigh));
      ASSERT_EQ(leases.size(), 1u);
      granted_at[2] = job.ctx().now();
      job.ctx().wait_for(1_ms);  // hold, so batch can't ride this slot
      EXPECT_EQ(arm.release_job(jid), ArmResult::kOk);
    }
  };
  cluster.submit(spec);
  cluster.run();
  EXPECT_GE(granted_at[2], 1_ms);
  EXPECT_LT(granted_at[2], 2_ms);  // high rode the first release
  // Batch arrived first but was served second: the next slot frees at
  // 2 ms (rank 2's release), so priority order inverted arrival order.
  EXPECT_GE(granted_at[1], 2_ms);
  EXPECT_GT(granted_at[1], granted_at[2]);
}

/// Topology with accelerator 0 behind slow links: nodes are CN0=0, ac0=1,
/// ac1=2, ARM=3; every link touching node 1 is 5x the wire latency, so the
/// latency zones are {CN0, ac1, ARM} and {ac0}.
rt::ClusterConfig far_ac0_cluster() {
  rt::ClusterConfig c = small_cluster(/*cns=*/1, /*acs=*/2);
  const SimDuration slow = 5 * c.fabric.wire_latency;
  c.fabric.link_latency_overrides = {{0, 1, slow}, {1, 2, slow}, {1, 3, slow}};
  return c;
}

TEST(Sched, PlacementPrefersTheRequestersZone) {
  rt::Cluster cluster(far_ac0_cluster());
  const dmpi::Rank near_rank = cluster.daemon_rank(1);  // ac1, same zone
  const dmpi::Rank far_rank = cluster.daemon_rank(0);   // ac0, remote zone
  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    const auto first = arm.acquire(ResourceRequest{}.with_job(1));
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].daemon_rank, near_rank);
    // Only the far accelerator remains; placement is a preference, not a
    // constraint.
    const auto second = arm.acquire(ResourceRequest{}.with_job(1));
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].daemon_rank, far_rank);
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Sched, PlacementDisabledRestoresLegacyOrder) {
  rt::ClusterConfig config = far_ac0_cluster();
  config.topology_placement = false;
  rt::Cluster cluster(config);
  const dmpi::Rank legacy_first = cluster.daemon_rank(0);
  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    const auto first = job.session().arm().acquire(
        ResourceRequest{}.with_job(1));
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].daemon_rank, legacy_first);  // ascending slot scan
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Sched, LocalityHintOverridesTheRequesterNode) {
  // The requester sits in the fast zone but asks to be placed near ac0's
  // node; the hint, not the origin, drives zone selection.
  rt::Cluster cluster(far_ac0_cluster());
  const dmpi::Rank far_rank = cluster.daemon_rank(0);
  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    const auto leases = job.session().arm().acquire(
        ResourceRequest{}.with_job(1).with_locality(1));  // ac0's fabric node
    ASSERT_EQ(leases.size(), 1u);
    EXPECT_EQ(leases[0].daemon_rank, far_rank);
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Sched, SessionAcquireThreadsTypedRequests) {
  // The front-end path: a typed request through Session::acquire yields a
  // live, computable accelerator proxy of the requested class.
  run_job(mixed_pool_cluster(), [](rt::JobContext& job) {
    auto accs = job.session().acquire(
        ResourceRequest{}.with_count(1).with_kind("mic"));
    ASSERT_EQ(accs.size(), 1u);
    core::Accelerator& acc = *accs[0];
    const gpu::DevPtr d = acc.mem_alloc(64_KiB);
    std::vector<std::byte> host(64_KiB);
    for (std::size_t i = 0; i < host.size(); ++i) {
      host[i] = static_cast<std::byte>(i * 31u);
    }
    acc.memcpy_h2d(d, util::Buffer::backed_copy(
                          std::span<const std::byte>(host)));
    const util::Buffer back = acc.memcpy_d2h(d, 64_KiB);
    ASSERT_EQ(back.size(), host.size());
    EXPECT_EQ(std::memcmp(back.bytes().data(), host.data(), host.size()), 0);
    acc.mem_free(d);
    job.session().release(accs[0]);
    EXPECT_EQ(job.session().arm().stats().free, 3u);
  });
}

TEST(Sched, LegacyFlatAcquireStillWorks) {
  // The pre-scheduler shim: acquire(job, count, wait, kind) must behave as
  // a gang, normal-priority request with no memory constraint.
  run_job(mixed_pool_cluster(), [](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    const auto gpus = arm.acquire(1, 2, /*wait=*/false, "gpu");
    ASSERT_EQ(gpus.size(), 2u);
    EXPECT_TRUE(arm.acquire(1, 2, /*wait=*/false, "gpu").empty());  // gang
    const auto any = arm.acquire(1, 1);
    ASSERT_EQ(any.size(), 1u);  // the MIC, via the unconstrained path
    EXPECT_EQ(arm.stats().free, 0u);
  });
}

}  // namespace
}  // namespace dacc::arm
