// Priority preemption end to end (DESIGN.md §13): an urgent job arriving at
// a full pool revokes a batch job's lease, the preempted front-end replays
// its operation log onto a re-acquired accelerator transparently (no data
// loss, no compute-node failure), and the healthy preempted slot is never
// reported broken. Runs against both the single ARM and the replicated
// deployment; per-backend ctest registration covers all three engines.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "arm/arm.hpp"
#include "common/testbed.hpp"
#include "rt/cluster.hpp"
#include "util/buffer.hpp"
#include "util/units.hpp"

namespace dacc::arm {
namespace {

using dacc::testing::replicated_cluster;
using dacc::testing::small_cluster;

constexpr std::uint64_t kBytes = 4_KiB;

std::vector<std::byte> pattern(int iter, int acc) {
  std::vector<std::byte> host(kBytes);
  for (std::size_t i = 0; i < host.size(); ++i) {
    host[i] = static_cast<std::byte>((i * 31u) ^ (iter * 7u) ^ (acc * 131u));
  }
  return host;
}

/// Batch job holding the whole pool, continuously writing and verifying
/// device memory; survives a mid-run preemption via transparent replacement.
void batch_body(rt::JobContext& job) {
  auto accs = job.session().acquire(
      ResourceRequest{}.with_count(2).with_wait(true));
  ASSERT_EQ(accs.size(), 2u);
  std::vector<gpu::DevPtr> ptrs;
  for (core::Accelerator* acc : accs) ptrs.push_back(acc->mem_alloc(kBytes));
  for (int iter = 0; iter < 24; ++iter) {
    for (int a = 0; a < 2; ++a) {
      const std::vector<std::byte> host = pattern(iter, a);
      accs[static_cast<std::size_t>(a)]->memcpy_h2d(
          ptrs[static_cast<std::size_t>(a)],
          util::Buffer::backed_copy(std::span<const std::byte>(host)));
    }
    job.ctx().wait_for(150_us);
    for (int a = 0; a < 2; ++a) {
      const std::vector<std::byte> want = pattern(iter, a);
      const util::Buffer back = accs[static_cast<std::size_t>(a)]->memcpy_d2h(
          ptrs[static_cast<std::size_t>(a)], kBytes);
      ASSERT_EQ(back.size(), want.size());
      EXPECT_EQ(std::memcmp(back.bytes().data(), want.data(), want.size()), 0)
          << "iter " << iter << " acc " << a;
    }
  }
  for (core::Accelerator* acc : accs) job.session().release(acc);
}

/// Urgent latecomer: preempts one batch lease, computes briefly, leaves.
void urgent_body(rt::JobContext& job) {
  job.ctx().wait_for(1_ms);
  auto accs = job.session().acquire(
      ResourceRequest{}.with_count(1).with_wait(true));
  ASSERT_EQ(accs.size(), 1u);
  const gpu::DevPtr d = accs[0]->mem_alloc(kBytes);
  const std::vector<std::byte> host = pattern(99, 0);
  accs[0]->memcpy_h2d(d, util::Buffer::backed_copy(
                             std::span<const std::byte>(host)));
  const util::Buffer back = accs[0]->memcpy_d2h(d, kBytes);
  EXPECT_EQ(std::memcmp(back.bytes().data(), host.data(), host.size()), 0);
  job.ctx().wait_for(1_ms);
  accs[0]->mem_free(d);
  job.session().release(accs[0]);
}

void run_preemption_scenario(rt::ClusterConfig config) {
  config.retry.replace_on_failure = true;
  rt::Cluster cluster(std::move(config));
  dacc::testing::FlightOnFailure post_mortem(cluster);
  rt::JobSpec batch;
  batch.name = "batch";
  batch.priority = kPriorityBatch;
  batch.body = batch_body;
  rt::JobSpec urgent;
  urgent.name = "urgent";
  urgent.priority = kPriorityUrgent;
  urgent.body = urgent_body;
  cluster.submit(batch, /*first_cn=*/0);
  cluster.submit(urgent, /*first_cn=*/1);
  cluster.run();

  const PoolStats s = cluster.arm_stats();
  EXPECT_EQ(s.preemptions, 1u);   // exactly one lease was revoked for B
  EXPECT_EQ(s.replacements, 1u);  // and replayed onto a fresh lease
  EXPECT_EQ(s.revocations, 0u);   // no liveness revocation happened
  EXPECT_EQ(s.broken, 0u);  // the preempted slot is healthy, never reported
  EXPECT_EQ(s.total, 2u);
  EXPECT_EQ(s.free, 2u);
}

TEST(Preempt, UrgentEvictsBatchAndReplayRestoresState) {
  run_preemption_scenario(small_cluster(/*cns=*/2, /*acs=*/2));
}

TEST(Preempt, ReplayIntegritySurvivesTheReplicatedArm) {
  run_preemption_scenario(
      replicated_cluster(/*cns=*/2, /*acs=*/2, /*replicas=*/3));
}

TEST(Preempt, EqualPriorityNeverPreempts) {
  // Two normal-class jobs: the latecomer waits for a release instead of
  // evicting anyone.
  rt::Cluster cluster(small_cluster(/*cns=*/2, /*acs=*/2));
  SimTime granted_at = 0;
  rt::JobSpec holder;
  holder.body = [](rt::JobContext& job) {
    auto accs = job.session().acquire(
        ResourceRequest{}.with_count(2).with_wait(true));
    ASSERT_EQ(accs.size(), 2u);
    job.ctx().wait_for(2_ms);
    for (core::Accelerator* acc : accs) job.session().release(acc);
  };
  rt::JobSpec latecomer;
  latecomer.body = [&](rt::JobContext& job) {
    job.ctx().wait_for(500_us);
    auto accs = job.session().acquire(
        ResourceRequest{}.with_count(1).with_wait(true));
    ASSERT_EQ(accs.size(), 1u);
    granted_at = job.ctx().now();
    job.session().release(accs[0]);
  };
  cluster.submit(holder, /*first_cn=*/0);
  cluster.submit(latecomer, /*first_cn=*/1);
  cluster.run();
  EXPECT_EQ(cluster.arm_stats().preemptions, 0u);
  EXPECT_GE(granted_at, 2_ms);  // served by the release, not by eviction
}

}  // namespace
}  // namespace dacc::arm
