// Hardening of the consensus wire layer (DESIGN.md §11): every message
// type must reject truncation at every byte boundary with a clean
// proto::WireError, random garbage must never crash a decoder, and a live
// replica fed stale-term replays, corrupted frames and absurd indices must
// drop them whole — state machine untouched, service uninterrupted.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arm/arm.hpp"
#include "arm/lease_machine.hpp"
#include "arm/raft/node.hpp"
#include "arm/raft/wire.hpp"
#include "common/testbed.hpp"
#include "proto/wire.hpp"
#include "rpc/channel.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dacc::arm::raft {
namespace {

using proto::WireError;
using proto::WireReader;
using proto::WireWriter;

/// Consumes the rpc header (op word + reply tag) the way the replica's
/// dispatch loop does before handing the reader to the payload decoder.
WireReader payload_reader(const util::Buffer& frame) {
  WireReader r(frame.slice(0, frame.size()));
  (void)r.u32();  // op word
  (void)r.u32();  // reply tag
  return r;
}

Command sample_command() {
  Command cmd;
  cmd.client = 3;
  cmd.reply_tag = 2'000'017;
  cmd.op = static_cast<std::uint32_t>(ArmOp::kAcquire);
  cmd.body = WireWriter{}.u64(7).u32(2).u32(1).str("gpu").finish();
  return cmd;
}

AppendEntries sample_append() {
  AppendEntries ae;
  ae.term = 5;
  ae.leader = 2;
  ae.prev_index = 9;
  ae.prev_term = 4;
  ae.commit = 8;
  ae.quiesce = true;
  for (int i = 0; i < 3; ++i) {
    LogEntry e;
    e.term = 5;
    e.at = 1'000'000 + i;
    e.cmd = sample_command();
    ae.entries.push_back(std::move(e));
  }
  return ae;
}

TEST(RaftWireFuzz, MessagesRoundTrip) {
  const AppendEntries ae = sample_append();
  WireReader ar = payload_reader(ae.encode());
  const AppendEntries ae2 = AppendEntries::decode(ar);
  EXPECT_EQ(ae2.term, ae.term);
  EXPECT_EQ(ae2.leader, ae.leader);
  EXPECT_EQ(ae2.prev_index, ae.prev_index);
  EXPECT_EQ(ae2.prev_term, ae.prev_term);
  EXPECT_EQ(ae2.commit, ae.commit);
  EXPECT_EQ(ae2.quiesce, ae.quiesce);
  ASSERT_EQ(ae2.entries.size(), ae.entries.size());
  for (std::size_t i = 0; i < ae.entries.size(); ++i) {
    EXPECT_EQ(ae2.entries[i].term, ae.entries[i].term);
    EXPECT_EQ(ae2.entries[i].at, ae.entries[i].at);
    EXPECT_EQ(ae2.entries[i].cmd.client, ae.entries[i].cmd.client);
    EXPECT_EQ(ae2.entries[i].cmd.reply_tag, ae.entries[i].cmd.reply_tag);
    EXPECT_EQ(ae2.entries[i].cmd.op, ae.entries[i].cmd.op);
  }

  // Garbage terms and indices are values, not formats: they round-trip at
  // the wire layer and are rejected by protocol rules, not decoders.
  RequestVote rv;
  rv.term = ~0ull;
  rv.candidate = -1;
  rv.last_log_index = ~0ull;
  rv.last_log_term = ~0ull - 1;
  WireReader rr = payload_reader(rv.encode());
  const RequestVote rv2 = RequestVote::decode(rr);
  EXPECT_EQ(rv2.term, rv.term);
  EXPECT_EQ(rv2.candidate, rv.candidate);
  EXPECT_EQ(rv2.last_log_index, rv.last_log_index);
  EXPECT_EQ(rv2.last_log_term, rv.last_log_term);

  InstallSnapshot is;
  is.term = 6;
  is.leader = 0;
  is.last_index = 40;
  is.last_term = 6;
  is.snapshot = LeaseMachine({{1, "c1060"}}, QueuePolicy::kFcfs).snapshot();
  WireReader ir = payload_reader(is.encode());
  const InstallSnapshot is2 = InstallSnapshot::decode(ir);
  EXPECT_EQ(is2.last_index, is.last_index);
  EXPECT_EQ(is2.snapshot.size(), is.snapshot.size());
}

TEST(RaftWireFuzz, EveryTruncationPointThrows) {
  const std::vector<util::Buffer> frames = {
      sample_append().encode(),
      RequestVote{3, 1, 10, 2}.encode(),
      VoteReply{3, 2, true}.encode(),
      AppendReply{3, 1, true, 10, 8}.encode(),
      InstallSnapshot{4, 0, 12, 3,
                      LeaseMachine({{1, "c1060"}}, QueuePolicy::kFcfs)
                          .snapshot()}
          .encode(),
      SnapshotReply{4, 1, 12}.encode(),
  };
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const util::Buffer& full = frames[f];
    // Cut inside the payload (the first 8 bytes are the rpc header the
    // server's channel validates separately).
    for (std::uint64_t cut = 8; cut < full.size(); ++cut) {
      WireReader r(full.slice(0, cut));
      (void)r.u32();
      (void)r.u32();
      EXPECT_THROW(
          {
            switch (f) {
              case 0: (void)AppendEntries::decode(r); break;
              case 1: (void)RequestVote::decode(r); break;
              case 2: (void)VoteReply::decode(r); break;
              case 3: (void)AppendReply::decode(r); break;
              case 4: (void)InstallSnapshot::decode(r); break;
              case 5: (void)SnapshotReply::decode(r); break;
            }
          },
          WireError)
          << "frame " << f << " cut at " << cut;
    }
  }
}

TEST(RaftWireFuzz, EntryCountNeverExceedsTheFrame) {
  // An AppendEntries claiming more entries than its bytes could possibly
  // hold must throw before any allocation-by-count happens.
  const util::Buffer poison = WireWriter{}
                                  .u32(0)  // payload only; header consumed
                                  .u32(0)
                                  .u64(5)          // term
                                  .u64(2)          // leader
                                  .u64(0)          // prev_index
                                  .u64(0)          // prev_term
                                  .u64(0)          // commit
                                  .u32(0)          // quiesce
                                  .u32(0xFFFFFFF)  // entry count
                                  .finish();
  WireReader r = payload_reader(poison);
  EXPECT_THROW((void)AppendEntries::decode(r), WireError);
}

TEST(RaftWireFuzz, RandomBytesNeverCrashTheDecoders) {
  util::Rng rng(0x4a77);
  int clean_throws = 0;
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::byte> junk(rng.next_below(96));
    for (auto& b : junk) b = static_cast<std::byte>(rng.next_below(256));
    WireReader r(util::Buffer::backed(std::move(junk)));
    try {
      switch (round % 6) {
        case 0: (void)AppendEntries::decode(r); break;
        case 1: (void)RequestVote::decode(r); break;
        case 2: (void)VoteReply::decode(r); break;
        case 3: (void)AppendReply::decode(r); break;
        case 4: (void)InstallSnapshot::decode(r); break;
        case 5: (void)SnapshotReply::decode(r); break;
      }
    } catch (const WireError&) {
      ++clean_throws;
    }
  }
  EXPECT_GT(clean_throws, 0);
}

// ---------------------------------------------------------------------------
// Live replica under attack: stale replays, garbage, absurd indices
// ---------------------------------------------------------------------------

/// Reads one consensus frame the driver received back from the replica.
template <typename M>
M recv_reply(dmpi::Mpi& mpi, const dmpi::Comm& comm, RaftOp expect) {
  util::Buffer frame = mpi.recv(comm, 0, kArmRequestTag);
  WireReader r(frame.view());
  EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(expect));
  (void)r.u32();  // reply tag (0: one-way consensus frame)
  return M::decode(r);
}

TEST(RaftWireFuzz, LiveReplicaDropsPoisonWhole) {
  // Rank 0 runs a single-replica group (it elects itself); rank 1 plays a
  // byzantine peer: stale-term replays, truncated frames, random garbage
  // and absurd indices. The replica must answer protocol rejections for
  // well-formed-but-stale frames, drop malformed ones whole, and keep
  // serving clients with its lease table untouched.
  dacc::testing::MpiBed bed(2);
  RaftParams params;
  params.seed = 0x5EED'F00Dull;
  RaftNode node(bed.world(), /*self=*/0, /*replica=*/0, {0},
                {{1, "c1060"}, {1, "c1060"}}, QueuePolicy::kFcfs, params,
                HeartbeatParams{});

  bed.run({
      [&node](dmpi::Mpi&, sim::Context& ctx) { node.run(ctx); },
      [&](dmpi::Mpi& mpi, sim::Context& ctx) {
        const dmpi::Comm& comm = bed.comm();
        ctx.wait_until(10_ms);  // the lone replica elected itself by now
        ArmClient client(mpi, comm, 0);
        const PoolStats before = client.stats();
        EXPECT_EQ(before.total, 2u);
        EXPECT_EQ(before.free, 2u);

        // Stale-term AppendEntries replay: protocol rejection, not a crash;
        // the reply names the replica's real (higher) term.
        AppendEntries stale;
        stale.term = 0;
        stale.leader = 1;
        mpi.send(comm, 0, kArmRequestTag, stale.encode());
        const auto ae_rep =
            recv_reply<AppendReply>(mpi, comm, RaftOp::kAppendReply);
        EXPECT_FALSE(ae_rep.success);
        EXPECT_GE(ae_rep.term, 1u);

        // Stale-term vote replay: never granted.
        RequestVote rv;
        rv.term = 0;
        rv.candidate = 1;
        rv.last_log_index = ~0ull;  // absurd index changes nothing at term 0
        mpi.send(comm, 0, kArmRequestTag, rv.encode());
        const auto vote = recv_reply<VoteReply>(mpi, comm, RaftOp::kVoteReply);
        EXPECT_FALSE(vote.granted);

        // Corrupted InstallSnapshot at a huge term: restore() throws inside
        // the replica, which must drop the frame with its machine intact
        // (the no-partial-application rule).
        InstallSnapshot poison;
        poison.term = 1'000'000;
        poison.leader = 1;
        poison.last_index = ~0ull / 2;
        poison.last_term = 999;
        poison.snapshot =
            WireWriter{}.u64(0xDEAD).u64(0xBEEF).u32(7).finish();
        mpi.send(comm, 0, kArmRequestTag, poison.encode());

        // Truncations of a valid AppendEntries at every payload boundary,
        // then bursts of random garbage. All dropped silently.
        const util::Buffer full = sample_append().encode();
        for (std::uint64_t cut = 1; cut < full.size(); ++cut) {
          mpi.send(comm, 0, kArmRequestTag, full.slice(0, cut));
        }
        util::Rng rng(0xBAD5EED);
        for (int i = 0; i < 64; ++i) {
          std::vector<std::byte> junk(1 + rng.next_below(64));
          for (auto& b : junk) {
            b = static_cast<std::byte>(rng.next_below(256));
          }
          mpi.send(comm, 0, kArmRequestTag,
                   util::Buffer::backed(std::move(junk)));
        }

        // The replica took a term bump from the poison snapshot's header,
        // re-elected itself, and still serves the unchanged lease table.
        // Two endpoints (both the same replica) put the client on the
        // failover ladder, which rides out the re-election window.
        ArmClient survivor(mpi, comm, std::vector<dmpi::Rank>{0, 0});
        const PoolStats after = survivor.stats();
        EXPECT_EQ(after.total, 2u);
        EXPECT_EQ(after.free, 2u);
        survivor.shutdown();  // lets the replica's service loop return
      },
  });

  EXPECT_EQ(node.machine().stats().free, 2u);
  EXPECT_GE(node.term(), 1'000'000u);  // the poison term was adopted
  EXPECT_EQ(node.last_applied(), node.commit_index());
}

}  // namespace
}  // namespace dacc::arm::raft
