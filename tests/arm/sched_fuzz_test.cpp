// Hardening of the typed-acquire wire format (DESIGN.md §13): the versioned
// request extension must reject truncation at every byte except the legacy
// boundary, bound every enum-like field, drop malformed frames whole (no
// partial application to the lease machine), and answer absurd-but-well-
// formed values with one clean status.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "arm/arm.hpp"
#include "arm/lease_machine.hpp"
#include "proto/wire.hpp"
#include "util/buffer.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dacc::arm {
namespace {

using proto::WireError;
using proto::WireReader;
using proto::WireWriter;

ResourceRequest sample_request() {
  return ResourceRequest{}
      .with_job(42)
      .with_count(3)
      .with_wait(true)
      .with_kind("gpu")
      .with_memory(2_GiB)
      .with_gang(false)
      .with_priority(kPriorityHigh)
      .with_locality(7);
}

util::Buffer encode(const ResourceRequest& req) {
  WireWriter w;
  req.encode_body(w);
  return w.finish();
}

/// The legacy flat-acquire prefix of `req` (job, count, wait, kind) — the
/// one boundary where a shorter frame is still a valid request.
util::Buffer encode_legacy_prefix(const ResourceRequest& req) {
  return WireWriter{}
      .u64(req.job)
      .u32(req.count)
      .u32(req.wait ? 1 : 0)
      .str(req.kind)
      .finish();
}

TEST(SchedWireFuzz, RequestRoundTripsWithExtension) {
  const ResourceRequest req = sample_request();
  const util::Buffer body = encode(req);
  WireReader r(body.view());
  const ResourceRequest back = ResourceRequest::decode_body(r);
  EXPECT_EQ(back.job, req.job);
  EXPECT_EQ(back.count, req.count);
  EXPECT_EQ(back.wait, req.wait);
  EXPECT_EQ(back.kind, req.kind);
  EXPECT_EQ(back.memory_bytes, req.memory_bytes);
  EXPECT_EQ(back.gang, req.gang);
  EXPECT_EQ(back.priority, req.priority);
  EXPECT_EQ(back.locality, req.locality);
}

TEST(SchedWireFuzz, LegacyFrameDecodesToDefaultExtension) {
  const ResourceRequest req = sample_request();
  const util::Buffer legacy = encode_legacy_prefix(req);
  WireReader r(legacy.view());
  const ResourceRequest back = ResourceRequest::decode_body(r);
  EXPECT_EQ(back.job, req.job);
  EXPECT_EQ(back.count, req.count);
  EXPECT_EQ(back.wait, req.wait);
  EXPECT_EQ(back.kind, req.kind);
  // Extension fields at their defaults: the old flat semantics.
  EXPECT_EQ(back.memory_bytes, 0u);
  EXPECT_TRUE(back.gang);
  EXPECT_EQ(back.priority, kPriorityNormal);
  EXPECT_EQ(back.locality, -1);
}

TEST(SchedWireFuzz, TruncationThrowsEverywhereButTheLegacyBoundary) {
  const ResourceRequest req = sample_request();
  const util::Buffer full = encode(req);
  const std::uint64_t legacy_len = encode_legacy_prefix(req).size();
  ASSERT_LT(legacy_len, full.size());
  for (std::uint64_t cut = 0; cut < full.size(); ++cut) {
    WireReader r(full.slice(0, cut));
    if (cut == legacy_len) {
      // The one valid shorter frame: a complete legacy request.
      const ResourceRequest back = ResourceRequest::decode_body(r);
      EXPECT_EQ(back.priority, kPriorityNormal);
      continue;
    }
    EXPECT_THROW((void)ResourceRequest::decode_body(r), WireError)
        << "cut at " << cut;
  }
}

TEST(SchedWireFuzz, UnknownExtensionVersionRejected) {
  WireWriter w;
  w.u64(1).u32(1).u32(0).str("gpu");
  w.u32(kAcquireExtVersion + 1).u64(0).u32(0).u32(1).u64(~0ull);
  const util::Buffer body = w.finish();
  WireReader r(body.view());
  EXPECT_THROW((void)ResourceRequest::decode_body(r), WireError);
}

TEST(SchedWireFuzz, PriorityAboveWireBoundRejected) {
  ResourceRequest req = sample_request();
  req.priority = kMaxPriority + 1;
  const util::Buffer body = encode(req);
  WireReader r(body.view());
  EXPECT_THROW((void)ResourceRequest::decode_body(r), WireError);
}

TEST(SchedWireFuzz, TrailingBytesAfterExtensionRejected) {
  WireWriter w;
  sample_request().encode_body(w);
  w.u32(0xDEAD);
  const util::Buffer body = w.finish();
  WireReader r(body.view());
  EXPECT_THROW((void)ResourceRequest::decode_body(r), WireError);
}

TEST(SchedWireFuzz, RandomBodiesNeverCrashTheDecoder) {
  util::Rng rng(0x5C4ED);
  int clean_throws = 0;
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::byte> junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::byte>(rng.next_below(256));
    WireReader r(util::Buffer::backed(std::move(junk)));
    try {
      (void)ResourceRequest::decode_body(r);
    } catch (const WireError&) {
      ++clean_throws;
    }
  }
  EXPECT_GT(clean_throws, 0);
}

// ---------------------------------------------------------------------------
// No partial application: malformed or absurd acquires against a live
// machine leave its state bit-identical.
// ---------------------------------------------------------------------------

LeaseMachine test_machine() {
  return LeaseMachine({{1, "c1060", "gpu", 4_GiB}, {2, "c1060", "gpu", 4_GiB}},
                      QueuePolicy::kFcfs);
}

Command acquire_command(util::Buffer body, int reply_tag = 2'000'001) {
  Command cmd;
  cmd.client = 9;
  cmd.reply_tag = reply_tag;
  cmd.op = static_cast<std::uint32_t>(ArmOp::kAcquire);
  cmd.body = std::move(body);
  return cmd;
}

TEST(SchedWireFuzz, MalformedAcquireLeavesTheMachineUntouched) {
  LeaseMachine machine = test_machine();
  const std::uint64_t before = machine.fingerprint();
  const util::Buffer full = encode(sample_request());
  const std::uint64_t legacy_len = encode_legacy_prefix(sample_request()).size();
  for (std::uint64_t cut = 0; cut < full.size(); ++cut) {
    if (cut == legacy_len) continue;  // valid legacy frame, would apply
    const Command cmd = acquire_command(full.slice(0, cut));
    EXPECT_THROW((void)LeaseMachine::validate(cmd), WireError);
    EXPECT_THROW((void)machine.apply(cmd, /*now=*/1000), WireError);
  }
  EXPECT_EQ(machine.fingerprint(), before);
  // The machine still serves a well-formed request afterwards.
  const ApplyResult ok = machine.apply(
      acquire_command(encode(ResourceRequest{}.with_job(1)), 2'000'555),
      2000);
  ASSERT_EQ(ok.effects.size(), 1u);
  EXPECT_EQ(machine.stats().assigned, 1u);
}

TEST(SchedWireFuzz, CountOverflowAnswersOneBareStatus) {
  // An absurd count is a value, not a format error: the machine must answer
  // exactly one kInsufficient reply (even in waiting mode — it could never
  // be satisfied) and assign nothing.
  LeaseMachine machine = test_machine();
  const ApplyResult res = machine.apply(
      acquire_command(encode(ResourceRequest{}
                                 .with_job(1)
                                 .with_count(0xFFFFFFFFu)
                                 .with_wait(true))),
      1000);
  ASSERT_EQ(res.effects.size(), 1u);
  EXPECT_EQ(res.effects[0].kind, Effect::Kind::kReply);
  WireReader r(res.effects[0].frame.view());
  EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(ArmResult::kInsufficient));
  EXPECT_EQ(r.u32(), 0u);  // zero leases: nothing partially granted
  const PoolStats s = machine.stats();
  EXPECT_EQ(s.assigned, 0u);
  EXPECT_EQ(s.queued_requests, 0u);
  // Only the reply cache changed; the pool itself is untouched.
  EXPECT_EQ(machine.stats().free, 2u);
}

TEST(SchedWireFuzz, GarbageBodiesNeverPerturbTheMachine) {
  LeaseMachine machine = test_machine();
  const std::uint64_t before = machine.fingerprint();
  util::Rng rng(0xFEED5);
  int survived = 0;
  for (int round = 0; round < 500; ++round) {
    std::vector<std::byte> junk(rng.next_below(48));
    for (auto& b : junk) b = static_cast<std::byte>(rng.next_below(256));
    Command cmd = acquire_command(util::Buffer::backed(std::move(junk)),
                                  2'000'100 + round);
    try {
      (void)machine.apply(cmd, 1000 + round);
    } catch (const WireError&) {
      ++survived;
    }
  }
  EXPECT_GT(survived, 0);
  // Every frame either applied cleanly or was dropped whole; the pool's
  // authoritative counters never tore.
  const PoolStats s = machine.stats();
  EXPECT_EQ(s.total, s.free + s.assigned + s.broken);
}

}  // namespace
}  // namespace dacc::arm
