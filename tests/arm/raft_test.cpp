// Replicated ARM consensus tier (DESIGN.md §11): leader election safety,
// log matching / bit-identical lease tables across replicas, snapshot
// compaction and restore, and cross-backend determinism of whole chaos
// schedules. The binary is registered once per execution backend (see
// CMakeLists.txt), so every test here also runs under coroutine, thread
// and parallel schedulers.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "arm/arm.hpp"
#include "arm/lease_machine.hpp"
#include "arm/raft/node.hpp"
#include "arm/raft/wire.hpp"
#include "common/chaos.hpp"
#include "common/testbed.hpp"
#include "core/api.hpp"
#include "proto/wire.hpp"
#include "rt/cluster.hpp"
#include "sim/exec.hpp"
#include "util/units.hpp"

namespace dacc::arm::raft {
namespace {

using dacc::testing::ChaosSchedule;
using dacc::testing::replicated_cluster;

#if defined(DACC_SIM_FORCE_THREAD_BACKEND)
constexpr bool kCoroutineAvailable = false;
#else
constexpr bool kCoroutineAvailable = true;
#endif

/// Replica indices still alive after the run.
std::vector<int> live_replicas(rt::Cluster& cluster) {
  std::vector<int> out;
  for (int r = 0; r < cluster.config().arm_replicas; ++r) {
    if (!cluster.arm_replica(r).halted()) out.push_back(r);
  }
  return out;
}

/// Asserts the replication invariants that must hold once the engine has
/// drained: every live replica fully applied, one agreed term, and the
/// same lease-machine fingerprint everywhere (log matching end to end).
void expect_converged(rt::Cluster& cluster) {
  const std::vector<int> live = live_replicas(cluster);
  ASSERT_FALSE(live.empty());
  const RaftNode& first = cluster.arm_replica(live[0]);
  for (const int r : live) {
    const RaftNode& node = cluster.arm_replica(r);
    SCOPED_TRACE("replica " + std::to_string(r));
    EXPECT_EQ(node.last_applied(), node.commit_index());
    EXPECT_EQ(node.term(), first.term());
    EXPECT_EQ(node.commit_index(), first.commit_index());
    EXPECT_EQ(node.machine().fingerprint(), first.machine().fingerprint());
  }
  const int leader = cluster.arm_leader();
  ASSERT_GE(leader, 0);
  EXPECT_FALSE(cluster.arm_replica(leader).halted());
}

/// One dynamic-assignment job: acquire, hold, release through job close.
/// `granted` (if any) must be a slot private to this job — concurrent jobs
/// run on different shards under the parallel backend.
rt::JobSpec acquire_job(std::uint32_t count, SimDuration hold,
                        std::size_t* granted = nullptr) {
  rt::JobSpec spec;
  spec.name = "acq";
  spec.body = [count, hold, granted](rt::JobContext& job) {
    const auto accs = job.session().acquire(count, /*wait=*/true);
    if (granted != nullptr) *granted = accs.size();
    job.ctx().wait_for(hold);
  };
  return spec;
}

TEST(Raft, ElectsExactlyOneLeaderPerTerm) {
  rt::ClusterConfig config = replicated_cluster(/*cns=*/1, /*acs=*/2);
  config.trace = true;
  rt::Cluster cluster(config);
  std::size_t granted = 0;
  cluster.submit(acquire_job(2, 2_ms, &granted));
  cluster.run();

  ASSERT_EQ(granted, 2u);
  expect_converged(cluster);

  // Election safety: the trace records every become_leader; no term may
  // crown two replicas.
  std::map<std::string, std::set<std::string>> leaders_by_term;
  bool elected = false;
  for (const auto& span : cluster.tracer().track("raft")) {
    // Labels look like "leader-r1-term3".
    if (span.name.rfind("leader-", 0) != 0) continue;
    const auto term_pos = span.name.find("-term");
    ASSERT_NE(term_pos, std::string::npos) << span.name;
    leaders_by_term[span.name.substr(term_pos + 5)].insert(
        span.name.substr(7, term_pos - 7));
    elected = true;
  }
  EXPECT_TRUE(elected);
  for (const auto& [term, leaders] : leaders_by_term) {
    EXPECT_EQ(leaders.size(), 1u) << "term " << term << " has two leaders";
  }
}

TEST(Raft, LeaseTableIdenticalOnAllReplicas) {
  rt::Cluster cluster(replicated_cluster(/*cns=*/2, /*acs=*/3));
  // Two jobs contend for three accelerators; the second queues at the pool
  // until the first releases, so the log carries queued-grant effects too.
  cluster.submit(acquire_job(2, 3_ms), /*first_cn=*/0);
  cluster.submit(acquire_job(2, 1_ms), /*first_cn=*/1);
  cluster.run();

  expect_converged(cluster);
  const arm::PoolStats stats = cluster.arm_stats();
  EXPECT_EQ(stats.total, 3u);
  EXPECT_EQ(stats.free, 3u);  // everything returned at job close
  EXPECT_GE(stats.acquisitions, 4u);
}

TEST(Raft, FiveReplicaGroupConverges) {
  rt::Cluster cluster(
      replicated_cluster(/*cns=*/1, /*acs=*/2, /*replicas=*/5));
  std::size_t granted = 0;
  cluster.submit(acquire_job(1, 2_ms, &granted));
  cluster.run();
  ASSERT_EQ(granted, 1u);
  expect_converged(cluster);
}

TEST(Raft, SnapshotThresholdCompactsTheLog) {
  rt::ClusterConfig config = replicated_cluster(/*cns=*/1, /*acs=*/1);
  config.raft.snapshot_threshold = 4;
  rt::Cluster cluster(config);
  // Many acquire/release rounds push every replica's applied index far past
  // the threshold, forcing repeated compaction while the group is serving.
  rt::JobSpec spec;
  spec.body = [](rt::JobContext& job) {
    for (int i = 0; i < 8; ++i) {
      const auto accs = job.session().acquire(1, /*wait=*/true);
      ASSERT_EQ(accs.size(), 1u);
      job.ctx().wait_for(200_us);
      job.session().release(accs[0]);
    }
  };
  cluster.submit(spec);
  cluster.run();

  expect_converged(cluster);
  for (const int r : live_replicas(cluster)) {
    const RaftNode& node = cluster.arm_replica(r);
    SCOPED_TRACE("replica " + std::to_string(r));
    EXPECT_GT(node.commit_index(), 16u);
    // Every replica compacted: its snapshot boundary advanced and the
    // retained log tail is shorter than one threshold window.
    EXPECT_GT(node.snapshot_index(), 0u);
    EXPECT_LT(node.last_log_index() - node.snapshot_index(),
              config.raft.snapshot_threshold);
  }
}

TEST(Raft, MachineSnapshotRoundTripsAfterChaos) {
  rt::Cluster cluster(replicated_cluster(/*cns=*/2, /*acs=*/3));
  ChaosSchedule::leader_kills(/*seed=*/7, /*count=*/1, 2_ms, 4_ms, 1_ms)
      .arm(cluster);
  cluster.submit(acquire_job(2, 6_ms), /*first_cn=*/0);
  cluster.submit(acquire_job(1, 4_ms), /*first_cn=*/1);
  cluster.run();

  expect_converged(cluster);
  // snapshot() -> restore() must reproduce the machine bit for bit: the
  // same format serves log compaction and InstallSnapshot transfers.
  const std::vector<int> live = live_replicas(cluster);
  ASSERT_FALSE(live.empty());
  const LeaseMachine& m = cluster.arm_replica(live[0]).machine();
  const util::Buffer snap = m.snapshot();
  proto::WireReader r(snap.view());
  const LeaseMachine restored = LeaseMachine::restore(r);
  EXPECT_EQ(restored.fingerprint(), m.fingerprint());
}

// ---------------------------------------------------------------------------
// Pre-vote (dissertation §9.6): disruptive rejoiners cannot depose a healthy
// leader
// ---------------------------------------------------------------------------

/// Receives consensus frames from replica 0 until one matches `expect`,
/// ignoring the replica's own campaign traffic (its pre-vote probes land on
/// the same tag while it is partitioned from its leader).
template <typename M>
M recv_filtered(dmpi::Mpi& mpi, const dmpi::Comm& comm, RaftOp expect) {
  for (;;) {
    util::Buffer frame = mpi.recv(comm, 0, kArmRequestTag);
    proto::WireReader r(frame.view());
    const auto op = static_cast<RaftOp>(r.u32());
    (void)r.u32();  // reply tag (0: one-way consensus frame)
    if (op == expect) return M::decode(r);
  }
}

TEST(Raft, PreVoteRefusesDisruptionWhileTheLeaderIsHealthy) {
  // Replica 0 (under test) follows a scripted leader on rank 1. Rank 2
  // plays a rejoining replica probing at an absurdly high term. While
  // leader contact is fresh the probe must be refused — and, the actual
  // damping claim, replica 0's term must never move, so the healthy leader
  // is not deposed. Once the leader falls silent past the election-timeout
  // floor, the same probe is granted.
  dacc::testing::MpiBed bed(3);
  RaftParams params;
  params.seed = 0x9E6'5EEDull;
  RaftNode node(bed.world(), /*self=*/0, /*replica=*/0, {0, 1, 2},
                {{1, "c1060"}}, QueuePolicy::kFcfs, params,
                HeartbeatParams{});

  auto heartbeat = [](std::uint64_t commit) {
    AppendEntries ae;
    ae.term = 1;
    ae.leader = 1;
    ae.prev_index = 0;
    ae.prev_term = 0;
    ae.commit = commit;
    return ae;
  };

  bed.run({
      [&node](dmpi::Mpi&, sim::Context& ctx) { node.run(ctx); },
      [&](dmpi::Mpi& mpi, sim::Context& ctx) {  // scripted leader
        const dmpi::Comm& comm = bed.comm();
        // Healthy phase: beats every 400 us until t = 4 ms. Every reply
        // must stay at term 1 — the rank-2 probe at 2 ms lands mid-phase
        // and must not have bumped it.
        for (int beat = 0; beat < 10; ++beat) {
          mpi.send(comm, 0, kArmRequestTag, heartbeat(0).encode());
          const auto rep =
              recv_filtered<AppendReply>(mpi, comm, RaftOp::kAppendReply);
          EXPECT_TRUE(rep.success);
          EXPECT_EQ(rep.term, 1u) << "beat " << beat;
          ctx.wait_for(400_us);
        }
        // Silent phase: replica 0 is allowed to campaign (it probes; we
        // ignore the traffic). At 9 ms, after rank 2's granted probe, a
        // committed kShutdown entry both terminates the run and proves the
        // term STILL never moved past 1.
        ctx.wait_until(9_ms);
        AppendEntries down = heartbeat(1);
        LogEntry entry;
        entry.term = 1;
        entry.at = 9'000'000;
        entry.cmd.client = 1;
        entry.cmd.reply_tag = 0;
        entry.cmd.op = static_cast<std::uint32_t>(ArmOp::kShutdown);
        down.entries.push_back(std::move(entry));
        mpi.send(comm, 0, kArmRequestTag, down.encode());
        const auto fin =
            recv_filtered<AppendReply>(mpi, comm, RaftOp::kAppendReply);
        EXPECT_TRUE(fin.success);
        EXPECT_EQ(fin.term, 1u);  // term 9 disruption never stuck
      },
      [&](dmpi::Mpi& mpi, sim::Context& ctx) {  // rejoining replica
        const dmpi::Comm& comm = bed.comm();
        PreVote probe;
        probe.term = 9;
        probe.candidate = 2;
        probe.last_log_index = 100;
        probe.last_log_term = 9;
        // Mid-heartbeats: refused, because the leader is in contact.
        ctx.wait_until(2_ms);
        mpi.send(comm, 0, kArmRequestTag, probe.encode());
        const auto refused =
            recv_filtered<PreVoteReply>(mpi, comm, RaftOp::kPreVoteReply);
        EXPECT_FALSE(refused.granted);
        // After > election_min of leader silence: granted.
        ctx.wait_until(8_ms);
        mpi.send(comm, 0, kArmRequestTag, probe.encode());
        const auto granted =
            recv_filtered<PreVoteReply>(mpi, comm, RaftOp::kPreVoteReply);
        EXPECT_TRUE(granted.granted);
      },
  });

  EXPECT_EQ(node.term(), 1u);  // the whole run never left the leader's term
}

TEST(Raft, PreVoteKeepsTermsStableAcrossSeededChaos) {
  // Seeded regression: two leader kills force two real elections, and with
  // pre-vote on (the default) nobody else's timeout may inflate the term —
  // each leadership change costs at most a couple of term increments.
  rt::Cluster cluster(
      replicated_cluster(/*cns=*/2, /*acs=*/3, /*replicas=*/5));
  ChaosSchedule::leader_kills(/*seed=*/1789, /*count=*/2, 2_ms, 8_ms, 2_ms)
      .arm(cluster);
  cluster.submit(acquire_job(2, 10_ms), /*first_cn=*/0);
  cluster.submit(acquire_job(1, 8_ms), /*first_cn=*/1);
  cluster.run();

  expect_converged(cluster);
  const std::vector<int> live = live_replicas(cluster);
  ASSERT_FALSE(live.empty());
  EXPECT_LE(cluster.arm_replica(live[0]).term(), 6u);
}

// ---------------------------------------------------------------------------
// Cross-backend / cross-shard determinism of a whole chaos schedule
// ---------------------------------------------------------------------------

struct ChaosFingerprint {
  SimTime final_now = 0;
  std::uint64_t events = 0;
  std::uint64_t machine_fp = 0;
  std::uint64_t term = 0;
  std::uint64_t commit = 0;
  std::size_t granted0 = 0;
  std::size_t granted1 = 0;
  std::string metrics;
  std::vector<std::string> raft_spans;

  bool operator==(const ChaosFingerprint& other) const = default;
};

ChaosFingerprint run_chaos(sim::ExecBackend backend, int shards) {
  rt::ClusterConfig config = replicated_cluster(/*cns=*/2, /*acs=*/3);
  config.trace = true;
  config.metrics = true;
  config.sim_backend = backend;
  config.sim_shards = shards;
  rt::Cluster cluster(config);
  ChaosSchedule::leader_kills(/*seed=*/42, /*count=*/1, 2_ms, 6_ms, 1_ms)
      .arm(cluster);

  ChaosFingerprint fp;
  cluster.submit(acquire_job(2, 8_ms, &fp.granted0), /*first_cn=*/0);
  cluster.submit(acquire_job(1, 5_ms, &fp.granted1), /*first_cn=*/1);
  cluster.run();

  fp.final_now = cluster.engine().now();
  fp.events = cluster.engine().events_executed();
  const std::vector<int> live = live_replicas(cluster);
  EXPECT_FALSE(live.empty());
  if (!live.empty()) {
    const RaftNode& node = cluster.arm_replica(live[0]);
    fp.machine_fp = node.machine().fingerprint();
    fp.term = node.term();
    fp.commit = node.commit_index();
  }
  // Exclude the parallel backend's per-shard era series: shard placement is
  // a scheduling detail, so those series vary with the shard count by
  // design. Everything else must stay byte-identical.
  fp.metrics =
      cluster.metrics().prometheus(obs::Registry::kShardSeriesPrefix, false);
  for (const auto& span : cluster.tracer().track("raft")) {
    fp.raft_spans.push_back(span.name + "@" + std::to_string(span.begin));
  }
  return fp;
}

TEST(RaftDeterminism, ChaosScheduleIsShardCountInvariant) {
  const ChaosFingerprint one = run_chaos(sim::ExecBackend::kParallel, 1);
  EXPECT_EQ(one.granted0, 2u);
  EXPECT_EQ(one.granted1, 1u);
  EXPECT_FALSE(one.raft_spans.empty());
  for (const int shards : {2, 4, 8}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    EXPECT_EQ(run_chaos(sim::ExecBackend::kParallel, shards), one);
  }
}

TEST(RaftDeterminism, ChaosScheduleIsBackendInvariant) {
  const ChaosFingerprint thread = run_chaos(sim::ExecBackend::kThread, 0);
  EXPECT_EQ(thread.granted0, 2u);
  EXPECT_EQ(thread.granted1, 1u);
  EXPECT_EQ(run_chaos(sim::ExecBackend::kParallel, 4), thread);
  if (kCoroutineAvailable) {
    EXPECT_EQ(run_chaos(sim::ExecBackend::kCoroutine, 0), thread);
  }
}

}  // namespace
}  // namespace dacc::arm::raft
