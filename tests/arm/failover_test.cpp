// End-to-end leader failover (DESIGN.md §11.4): real jobs keep running
// while the ARM leader is killed under them. The app code has zero
// failure handling — the client's failover ladder re-targets the new
// leader, the replicated lease table survives, and end-of-job release
// lands at whichever replica leads by then.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arm/arm.hpp"
#include "arm/raft/node.hpp"
#include "common/chaos.hpp"
#include "common/testbed.hpp"
#include "core/api.hpp"
#include "la/factorizations.hpp"
#include "la/kernels.hpp"
#include "la/matrix.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

namespace dacc::arm::raft {
namespace {

using dacc::testing::ChaosSchedule;
using dacc::testing::replicated_cluster;

/// Leader kills recorded by the chaos schedule (track "chaos").
int kills_recorded(rt::Cluster& cluster) {
  int kills = 0;
  for (const auto& span : cluster.tracer().track("chaos")) {
    if (span.name.rfind("kill-leader-", 0) == 0) ++kills;
  }
  return kills;
}

TEST(Failover, QrJobSurvivesLeaderKillMidRun) {
  // The fig09 workload on a replicated cluster: a functional QR
  // factorization on a network-attached GPU, with the ARM leader killed at
  // a seeded point while the job holds its lease.
  rt::ClusterConfig config = replicated_cluster(/*cns=*/1, /*acs=*/2);
  config.trace = true;
  config.registry = la::la_registry();
  rt::Cluster cluster(config);
  ChaosSchedule::leader_kills(/*seed=*/11, /*count=*/1, 1_ms, 3_ms, 1_ms)
      .arm(cluster);

  la::FactorResult qr;
  rt::JobSpec job;
  job.name = "qr";
  job.accelerators_per_rank = 1;
  job.body = [&](rt::JobContext& job_ctx) {
    core::RemoteDeviceLink gpu(job_ctx.session()[0], job_ctx.ctx());
    std::vector<core::DeviceLink*> gpus{&gpu};
    la::HostMatrix a(96, 96, /*functional=*/true);
    qr = la::dgeqrf_hybrid(job_ctx.ctx(), gpus, a, /*nb=*/32);
  };
  cluster.submit(job);
  cluster.run();

  // The kill really happened, and the job neither noticed nor failed.
  EXPECT_EQ(kills_recorded(cluster), 1);
  EXPECT_GT(qr.factor_time, 0);
  EXPECT_GT(qr.gflops, 0.0);

  // A new leader took over with the lease table intact: everything was
  // released at job close, nothing leaked or double-freed.
  const int leader = cluster.arm_leader();
  ASSERT_GE(leader, 0);
  EXPECT_TRUE(cluster.arm_replica(leader).halted() == false);
  const PoolStats stats = cluster.arm_stats();
  EXPECT_EQ(stats.free, stats.total);
}

TEST(Failover, JobsCompleteAcrossFiveSeededKillPoints) {
  // The acceptance drill: five different seeds, five different kill
  // instants — each run must elect a successor and finish its jobs with
  // the pool fully returned. The window opens after the first election
  // settles (~3ms): killing "the leader" before one exists is a no-op by
  // design, which would make the kill count a seed lottery.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    SCOPED_TRACE("schedule seed " + std::to_string(seed));
    rt::ClusterConfig config = replicated_cluster(/*cns=*/2, /*acs=*/3);
    config.trace = true;
    rt::Cluster cluster(config);
    ChaosSchedule::leader_kills(seed, /*count=*/1, 4_ms, 12_ms, 1_ms)
        .arm(cluster);

    std::size_t granted0 = 0;
    std::size_t granted1 = 0;
    rt::JobSpec a;
    a.body = [&granted0](rt::JobContext& job) {
      granted0 = job.session().acquire(2, /*wait=*/true).size();
      job.ctx().wait_for(10_ms);
    };
    rt::JobSpec b;
    b.body = [&granted1](rt::JobContext& job) {
      granted1 = job.session().acquire(1, /*wait=*/true).size();
      job.ctx().wait_for(6_ms);
    };
    cluster.submit(a, /*first_cn=*/0);
    cluster.submit(b, /*first_cn=*/1);
    cluster.run();

    EXPECT_EQ(kills_recorded(cluster), 1);
    EXPECT_EQ(granted0, 2u);
    EXPECT_EQ(granted1, 1u);
    const PoolStats stats = cluster.arm_stats();
    EXPECT_EQ(stats.total, 3u);
    EXPECT_EQ(stats.free, 3u);
  }
}

TEST(Failover, FiveReplicasSurviveTwoKills) {
  // Quorum arithmetic end to end: a five-replica group loses two leaders
  // in sequence and still serves (three survivors are a majority).
  rt::ClusterConfig config =
      replicated_cluster(/*cns=*/1, /*acs=*/2, /*replicas=*/5);
  config.trace = true;
  rt::Cluster cluster(config);
  ChaosSchedule::leader_kills(/*seed=*/23, /*count=*/2, 2_ms, 12_ms, 5_ms)
      .arm(cluster);

  std::size_t granted = 0;
  rt::JobSpec job;
  job.body = [&granted](rt::JobContext& job_ctx) {
    granted = job_ctx.session().acquire(1, /*wait=*/true).size();
    job_ctx.ctx().wait_for(20_ms);
  };
  cluster.submit(job);
  cluster.run();

  EXPECT_EQ(kills_recorded(cluster), 2);
  EXPECT_EQ(granted, 1u);
  int halted = 0;
  for (int r = 0; r < 5; ++r) {
    halted += cluster.arm_replica(r).halted() ? 1 : 0;
  }
  EXPECT_EQ(halted, 2);
  const PoolStats stats = cluster.arm_stats();
  EXPECT_EQ(stats.free, stats.total);
}

}  // namespace
}  // namespace dacc::arm::raft
