// Heterogeneous pools (device-kind constraints) and queue policies
// (FCFS vs backfill) of the resource manager.
#include <gtest/gtest.h>

#include "arm/arm.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

namespace dacc::arm {
namespace {

rt::ClusterConfig mixed_pool_cluster() {
  rt::ClusterConfig c;
  c.compute_nodes = 2;
  c.accelerator_devices = {gpu::tesla_c1060(), gpu::tesla_c1060(),
                           gpu::mic_knc()};
  return c;
}

TEST(Heterogeneous, PoolMixesDeviceKinds) {
  rt::Cluster cluster(mixed_pool_cluster());
  EXPECT_EQ(cluster.accelerator_device(0).params().kind, "gpu");
  EXPECT_EQ(cluster.accelerator_device(2).params().kind, "mic");
  EXPECT_EQ(cluster.arm().stats().total, 3u);
}

TEST(Heterogeneous, AcquireByKind) {
  rt::Cluster cluster(mixed_pool_cluster());
  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    auto mics = job.session().acquire(1, false, "mic");
    ASSERT_EQ(mics.size(), 1u);
    EXPECT_EQ(mics[0]->info().name, "Xeon Phi KNC (simulated)");
    // Only one MIC exists.
    EXPECT_TRUE(job.session().acquire(1, false, "mic").empty());
    // GPUs are still available.
    auto gpus = job.session().acquire(2, false, "gpu");
    EXPECT_EQ(gpus.size(), 2u);
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Heterogeneous, UnconstrainedAcquireTakesAnything) {
  rt::Cluster cluster(mixed_pool_cluster());
  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    EXPECT_EQ(job.session().acquire(3).size(), 3u);
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Heterogeneous, UnknownKindNeverGrants) {
  rt::Cluster cluster(mixed_pool_cluster());
  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    EXPECT_TRUE(job.session().acquire(1, false, "fpga").empty());
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Heterogeneous, MixedWorkOnGpuAndMic) {
  // The same kernels run on both device personalities (the "extensible to
  // any accelerator programming interface" claim).
  rt::Cluster cluster(mixed_pool_cluster());
  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    auto gpus = job.session().acquire(1, false, "gpu");
    auto mics = job.session().acquire(1, false, "mic");
    ASSERT_EQ(gpus.size(), 1u);
    ASSERT_EQ(mics.size(), 1u);
    for (core::Accelerator* ac : {gpus[0], mics[0]}) {
      const gpu::DevPtr p = ac->mem_alloc(64);
      ac->launch("fill_f64", {}, {p, std::int64_t{8}, 4.5});
      EXPECT_EQ(ac->memcpy_d2h(p, 64).as<double>()[0], 4.5);
    }
  };
  cluster.submit(spec);
  cluster.run();
}

// --- queue policies ---------------------------------------------------------

struct PolicyTimes {
  SimTime big_granted = 0;
  SimTime small_granted = 0;
};

PolicyTimes run_policy(Arm::QueuePolicy policy) {
  rt::ClusterConfig c;
  c.compute_nodes = 3;
  c.accelerators = 2;
  c.arm_policy = policy;
  rt::Cluster cluster(c);
  PolicyTimes times;

  // Holder: takes both accelerators for 10 ms.
  rt::JobSpec holder;
  holder.name = "holder";
  holder.body = [](rt::JobContext& job) {
    auto acs = job.session().acquire(2, true);
    ASSERT_EQ(acs.size(), 2u);
    job.ctx().wait_for(10_ms);
  };
  // Big: queued first, needs the whole pool again.
  rt::JobSpec big;
  big.name = "big";
  big.body = [&](rt::JobContext& job) {
    job.ctx().wait_for(1_ms);
    auto acs = job.session().acquire(2, true);
    ASSERT_EQ(acs.size(), 2u);
    times.big_granted = job.ctx().now();
    job.ctx().wait_for(5_ms);
  };
  // Small: queued second, needs one; releases one slot early.
  rt::JobSpec small;
  small.name = "small";
  small.body = [&](rt::JobContext& job) {
    job.ctx().wait_for(2_ms);
    // The holder frees one accelerator at t=6ms by releasing it early...
    auto acs = job.session().acquire(1, true);
    ASSERT_EQ(acs.size(), 1u);
    times.small_granted = job.ctx().now();
    job.ctx().wait_for(1_ms);
  };
  // Early releaser: modify holder to drop one accelerator at 6 ms.
  holder.body = [](rt::JobContext& job) {
    auto acs = job.session().acquire(2, true);
    ASSERT_EQ(acs.size(), 2u);
    job.ctx().wait_for(6_ms);
    job.session().release(acs[1]);  // one comes back early
    job.ctx().wait_for(4_ms);
  };

  cluster.submit(holder, 0);
  cluster.submit(big, 1);
  cluster.submit(small, 2);
  cluster.run();
  return times;
}

TEST(QueuePolicy, FcfsHeadBlocksSmallRequest) {
  const PolicyTimes t = run_policy(Arm::QueuePolicy::kFcfs);
  // One accelerator frees at ~6 ms, but FCFS keeps it idle for the queued
  // big request; small waits until big ran (after full release at ~10 ms).
  EXPECT_GE(t.big_granted, 10_ms);
  EXPECT_GT(t.small_granted, t.big_granted);
}

TEST(QueuePolicy, BackfillLetsSmallRequestJumpIn) {
  const PolicyTimes t = run_policy(Arm::QueuePolicy::kBackfill);
  // Backfill hands the early-released accelerator to the small request at
  // ~6 ms while big keeps waiting for the pair.
  EXPECT_GE(t.small_granted, 6_ms);
  EXPECT_LT(t.small_granted, 8_ms);
  EXPECT_LT(t.small_granted, t.big_granted);
}

TEST(QueuePolicy, BackfillStillServesEveryone) {
  const PolicyTimes t = run_policy(Arm::QueuePolicy::kBackfill);
  EXPECT_GT(t.big_granted, 0u);
  EXPECT_GT(t.small_granted, 0u);
}

}  // namespace
}  // namespace dacc::arm
