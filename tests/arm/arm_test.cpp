#include "arm/arm.hpp"

#include <gtest/gtest.h>

#include "common/testbed.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

namespace dacc::arm {
namespace {

using dacc::testing::run_job;
using dacc::testing::small_cluster;

TEST(Arm, AcquireGrantsExclusiveLeases) {
  run_job(small_cluster(), [](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    const auto a = arm.acquire(1, 2);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_NE(a[0].daemon_rank, a[1].daemon_rank);
    EXPECT_NE(a[0].lease_id, a[1].lease_id);
    const PoolStats s = arm.stats();
    EXPECT_EQ(s.total, 3u);
    EXPECT_EQ(s.assigned, 2u);
    EXPECT_EQ(s.free, 1u);
  });
}

TEST(Arm, OverAcquireFailsWithoutWait) {
  run_job(small_cluster(), [](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    EXPECT_TRUE(arm.acquire(1, 4).empty());  // only 3 in the pool
    // A failed acquire must not leak partial assignments.
    EXPECT_EQ(arm.stats().free, 3u);
  });
}

TEST(Arm, ReleaseReturnsToPool) {
  run_job(small_cluster(), [](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    const auto leases = arm.acquire(1, 3);
    ASSERT_EQ(leases.size(), 3u);
    EXPECT_EQ(arm.release(1, leases[1]), ArmResult::kOk);
    EXPECT_EQ(arm.stats().free, 1u);
    // The released accelerator is reacquirable.
    const auto again = arm.acquire(1, 1);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].daemon_rank, leases[1].daemon_rank);
    EXPECT_NE(again[0].lease_id, leases[1].lease_id);  // fresh lease id
  });
}

TEST(Arm, StaleLeaseReleaseRejected) {
  run_job(small_cluster(), [](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    const auto leases = arm.acquire(1, 1);
    ASSERT_EQ(leases.size(), 1u);
    EXPECT_EQ(arm.release(1, leases[0]), ArmResult::kOk);
    // Releasing again with the stale lease id fails.
    EXPECT_EQ(arm.release(1, leases[0]), ArmResult::kUnknownHandle);
  });
}

TEST(Arm, ReleaseByNonOwnerRejected) {
  run_job(small_cluster(), [](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    const auto leases = arm.acquire(/*job=*/1, 1);
    ASSERT_EQ(leases.size(), 1u);
    EXPECT_EQ(arm.release(/*job=*/2, leases[0]), ArmResult::kNotOwner);
    EXPECT_EQ(arm.stats().assigned, 1u);
  });
}

TEST(Arm, ReleaseJobFreesEverything) {
  run_job(small_cluster(), [](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    (void)arm.acquire(7, 3);
    EXPECT_EQ(arm.release_job(7), ArmResult::kOk);
    EXPECT_EQ(arm.stats().free, 3u);
  });
}

TEST(Arm, BrokenAcceleratorLeavesPool) {
  rt::Cluster cluster(small_cluster());
  const dmpi::Rank broken = cluster.daemon_rank(1);
  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    EXPECT_EQ(arm.report_broken(broken), ArmResult::kOk);
    const PoolStats s = arm.stats();
    EXPECT_EQ(s.broken, 1u);
    EXPECT_EQ(s.free, 2u);
    // Acquiring everything left never returns the broken one.
    const auto leases = arm.acquire(1, 2);
    ASSERT_EQ(leases.size(), 2u);
    for (const Lease& l : leases) EXPECT_NE(l.daemon_rank, broken);
    // A third is now impossible.
    EXPECT_TRUE(arm.acquire(1, 1).empty());
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Arm, ReportUnknownAcceleratorRejected) {
  run_job(small_cluster(), [](rt::JobContext& job) {
    EXPECT_EQ(job.session().arm().report_broken(999),
              ArmResult::kUnknownHandle);
  });
}

TEST(Arm, WaitingAcquireQueuesFcfs) {
  // Rank 0 grabs the whole pool, holds it 1 ms, then releases; rank 1's
  // waiting acquire is granted exactly then.
  rt::Cluster cluster(small_cluster(/*cns=*/2, /*acs=*/2));
  std::vector<SimTime> granted_at(2, 0);
  rt::JobSpec spec;
  spec.ranks = 2;
  spec.body = [&](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    const std::uint64_t jid = 100 + static_cast<std::uint64_t>(job.rank());
    if (job.rank() == 0) {
      const auto leases = arm.acquire(jid, 2);
      ASSERT_EQ(leases.size(), 2u);
      job.ctx().wait_for(1_ms);
      EXPECT_EQ(arm.release_job(jid), ArmResult::kOk);
    } else {
      job.ctx().wait_for(10_us);  // ensure rank 0 wins the race
      const auto leases = arm.acquire(jid, 2, /*wait=*/true);
      ASSERT_EQ(leases.size(), 2u);
      granted_at[1] = job.ctx().now();
    }
  };
  cluster.submit(spec);
  cluster.run();
  EXPECT_GE(granted_at[1], 1_ms);
}

TEST(Arm, UtilizationAccounting) {
  rt::Cluster cluster(small_cluster(1, 2));
  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    const auto leases = arm.acquire(1, 1);
    ASSERT_EQ(leases.size(), 1u);
    job.ctx().wait_for(10_ms);
    EXPECT_EQ(arm.release_job(1), ArmResult::kOk);
    job.ctx().wait_for(10_ms);
  };
  cluster.submit(spec);
  cluster.run();
  const auto util = cluster.arm().utilization(cluster.engine().now());
  // One accelerator was held ~half the time, the other never.
  const double hi = std::max(util[0], util[1]);
  const double lo = std::min(util[0], util[1]);
  EXPECT_NEAR(hi, 0.5, 0.05);
  EXPECT_NEAR(lo, 0.0, 0.01);
}

TEST(Arm, StatsCountAcquisitions) {
  run_job(small_cluster(), [](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    (void)arm.acquire(1, 2);
    (void)arm.acquire(1, 1);
    EXPECT_EQ(arm.stats().acquisitions, 3u);
  });
}

}  // namespace
}  // namespace dacc::arm
