// Failure detection and recovery end to end: heartbeat-driven lease
// revocation at the ARM, front-end request timeouts with retry, and the
// opt-in transparent accelerator replacement (paper Section III.A — a
// failed accelerator leaves the pool without taking the compute node or,
// with replacement enabled, even the job down).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "arm/arm.hpp"
#include "common/testbed.hpp"
#include "core/api.hpp"
#include "la/factorizations.hpp"
#include "la/kernels.hpp"
#include "la/matrix.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

namespace dacc::arm {
namespace {

using dacc::testing::small_cluster;
using gpu::Result;

#if defined(DACC_SIM_FORCE_THREAD_BACKEND)
constexpr bool kCoroutineAvailable = false;
#else
constexpr bool kCoroutineAvailable = true;
#endif

rt::ClusterConfig hb_cluster(int cns, int acs) {
  rt::ClusterConfig c = small_cluster(cns, acs);
  c.heartbeat.enabled = true;
  c.heartbeat.period = 1_ms;
  c.heartbeat.miss_threshold = 3;
  return c;
}

TEST(Recovery, MissedHeartbeatsRevokeLease) {
  // ac0's NIC dies at 2 ms: beats stop, the sweep revokes its lease once
  // the last beat is older than period * miss_threshold.
  rt::Cluster cluster(hb_cluster(/*cns=*/1, /*acs=*/2));
  cluster.fail_accelerator_link(0, 2_ms);
  PoolStats stats;
  ArmResult late_release = ArmResult::kOk;
  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    const auto leases = arm.acquire(1, 2);
    ASSERT_EQ(leases.size(), 2u);
    const Lease on_ac0 =
        leases[0].daemon_rank == job.cluster().daemon_rank(0) ? leases[0]
                                                              : leases[1];
    job.ctx().wait_for(20_ms);  // several sweeps past the threshold
    stats = arm.stats();
    // Releasing the revoked lease reports the revocation, not a bad handle.
    late_release = arm.release(1, on_ac0);
  };
  cluster.submit(spec);
  cluster.run();
  EXPECT_EQ(stats.revocations, 1u);
  EXPECT_EQ(stats.broken, 1u);
  EXPECT_EQ(stats.assigned, 1u);  // the healthy lease survived
  EXPECT_GT(stats.heartbeats, 10u);
  EXPECT_EQ(late_release, ArmResult::kRevoked);
}

TEST(Recovery, RevocationRequeuesAndFailsUnsatisfiable) {
  // Three single-rank jobs against a 2-slot pool. Job A holds both; ac0
  // falls silent. A waiting 1-slot acquire must be served from A's healthy
  // release; a waiting 2-slot acquire becomes unsatisfiable the moment the
  // pool shrinks and must fail instead of hanging forever.
  rt::Cluster cluster(hb_cluster(/*cns=*/3, /*acs=*/2));
  cluster.fail_accelerator_link(0, 2_ms);
  const dmpi::Rank ac0 = cluster.daemon_rank(0);

  SimTime b_granted_at = 0;
  dmpi::Rank b_rank = -1;
  SimTime c_failed_at = 0;
  bool c_empty = false;

  rt::JobSpec a;
  a.name = "holder";
  a.body = [&](rt::JobContext& job) {
    ArmClient& arm = job.session().arm();
    const auto leases = arm.acquire(101, 2);
    ASSERT_EQ(leases.size(), 2u);
    job.ctx().wait_for(10_ms);
    (void)arm.release_job(101);  // frees the healthy slot (+ revoked no-op)
    job.ctx().wait_for(5_ms);    // keep heartbeats flowing for the others
  };
  rt::JobSpec b;
  b.name = "wait-one";
  b.body = [&](rt::JobContext& job) {
    job.ctx().wait_for(100_us);  // queue behind the holder
    const auto leases = job.session().arm().acquire(102, 1, /*wait=*/true);
    ASSERT_EQ(leases.size(), 1u);
    b_granted_at = job.ctx().now();
    b_rank = leases[0].daemon_rank;
    (void)job.session().arm().release_job(102);
  };
  rt::JobSpec c;
  c.name = "wait-two";
  c.body = [&](rt::JobContext& job) {
    job.ctx().wait_for(200_us);
    const auto leases = job.session().arm().acquire(103, 2, /*wait=*/true);
    c_empty = leases.empty();
    c_failed_at = job.ctx().now();
  };
  cluster.submit(a, 0);
  cluster.submit(b, 1);
  cluster.submit(c, 2);
  cluster.run();

  EXPECT_GE(b_granted_at, 10_ms);  // served from the holder's release
  EXPECT_NE(b_rank, ac0);          // never the dead accelerator
  EXPECT_TRUE(c_empty);            // 2 > 1 surviving slot: unsatisfiable
  EXPECT_LT(c_failed_at, 10_ms);   // failed at revocation, no deadlock
  EXPECT_GT(c_failed_at, 3_ms);    // ...but only after the miss threshold
}

TEST(Recovery, ReplacementReplaysAllocationsAndPayloads) {
  // Device death with replace_on_failure: the front-end re-acquires, replays
  // the allocation map and payloads on the new device, and the job's data
  // survives intact — alloc/free interleavings included.
  rt::ClusterConfig cfg = small_cluster(/*cns=*/1, /*acs=*/2);
  cfg.retry.replace_on_failure = true;
  rt::Cluster cluster(cfg);
  const std::int64_t n = 1024;
  const auto bytes = static_cast<std::uint64_t>(n) * 8;

  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    auto accs = job.session().acquire(1);
    ASSERT_EQ(accs.size(), 1u);
    core::Accelerator& ac = *accs[0];
    ASSERT_EQ(ac.daemon_rank(), job.cluster().daemon_rank(0));

    // A scratch allocation that is freed again: replay must re-drive the
    // free too, or the replacement device leaks it.
    const gpu::DevPtr scratch = ac.mem_alloc(4096);
    const gpu::DevPtr a = ac.mem_alloc(bytes);
    const gpu::DevPtr b = ac.mem_alloc(bytes);
    const gpu::DevPtr c = ac.mem_alloc(bytes);
    ac.mem_free(scratch);

    std::vector<double> host(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < host.size(); ++i) {
      host[i] = static_cast<double>(i);
    }
    ac.memcpy_h2d(a, util::Buffer::of<double>(host));
    ac.launch("fill_f64", {}, {b, n, 5.0});

    // Kill the device *now*; the next operation hits kEccError and must be
    // transparently re-executed on the replacement.
    job.cluster().break_accelerator(0, job.ctx().now());
    ac.launch("vector_add_f64", {}, {a, b, c, n});
    EXPECT_EQ(ac.daemon_rank(), job.cluster().daemon_rank(1));

    util::Buffer out = ac.memcpy_d2h(c, bytes);
    const auto vals = out.as<double>();
    for (std::size_t i = 0; i < vals.size(); ++i) {
      ASSERT_DOUBLE_EQ(vals[i], static_cast<double>(i) + 5.0);
    }
    ac.mem_free(a);
    ac.mem_free(b);
    ac.mem_free(c);
    // Everything the replay allocated has been returned.
    EXPECT_EQ(job.cluster().accelerator_device(1).memory_used(), 0u);
  };
  cluster.submit(spec);
  cluster.run();
  const PoolStats stats = cluster.arm().stats();
  EXPECT_EQ(stats.replacements, 1u);
  EXPECT_EQ(stats.broken, 1u);
}

TEST(Recovery, TimeoutRetriesThenReplacesOnSilentDaemon) {
  // The daemon's NIC dies mid-job (the device itself is fine, it is just
  // unreachable): requests time out, retries burn out, and the session
  // replaces the accelerator.
  rt::ClusterConfig cfg = small_cluster(/*cns=*/1, /*acs=*/2);
  cfg.retry.request_timeout = 2_ms;
  cfg.retry.max_retries = 2;
  cfg.retry.replace_on_failure = true;
  rt::Cluster cluster(cfg);

  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    auto accs = job.session().acquire(1);
    ASSERT_EQ(accs.size(), 1u);
    core::Accelerator& ac = *accs[0];
    const gpu::DevPtr p = ac.mem_alloc(1_MiB);
    ac.memcpy_h2d(p, util::Buffer::backed_zero(1_MiB));

    job.cluster().fail_accelerator_link(0, job.ctx().now());
    const SimTime before = job.ctx().now();
    util::Buffer out = ac.memcpy_d2h(p, 1_MiB);  // must survive the outage
    EXPECT_EQ(out.size(), 1_MiB);
    EXPECT_EQ(ac.daemon_rank(), job.cluster().daemon_rank(1));
    // At least one full timeout elapsed before the replacement kicked in.
    EXPECT_GE(job.ctx().now() - before, 2_ms);
    ac.mem_free(p);
  };
  cluster.submit(spec);
  cluster.run();
  EXPECT_EQ(cluster.arm().stats().replacements, 1u);
}

TEST(Recovery, TimeoutWithoutReplacementReportsUnavailable) {
  rt::ClusterConfig cfg = small_cluster(/*cns=*/1, /*acs=*/1);
  cfg.retry.request_timeout = 1_ms;
  cfg.retry.max_retries = 1;
  rt::Cluster cluster(cfg);
  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    auto accs = job.session().acquire(1);
    ASSERT_EQ(accs.size(), 1u);
    core::Accelerator& ac = *accs[0];
    job.cluster().fail_accelerator_link(0, job.ctx().now());
    bool failed = false;
    try {
      (void)ac.mem_alloc(64);
    } catch (const core::AcError& e) {
      failed = true;
      EXPECT_EQ(e.code(), Result::kUnavailable);
    }
    EXPECT_TRUE(failed);
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Recovery, RevocationNoticeTriggersProactiveReplacement) {
  // Heartbeats + replacement: the sweep revokes the silent accelerator and
  // pushes a notice; the front-end consumes it on its next operation and
  // replaces *before* wasting a timeout on the dead daemon.
  rt::ClusterConfig cfg = hb_cluster(/*cns=*/1, /*acs=*/2);
  cfg.retry.request_timeout = 50_ms;  // generous: must not be what saves us
  cfg.retry.replace_on_failure = true;
  rt::Cluster cluster(cfg);

  rt::JobSpec spec;
  spec.body = [&](rt::JobContext& job) {
    auto accs = job.session().acquire(1);
    ASSERT_EQ(accs.size(), 1u);
    core::Accelerator& ac = *accs[0];
    const gpu::DevPtr p = ac.mem_alloc(64_KiB);
    job.cluster().fail_accelerator_link(0, job.ctx().now());
    job.ctx().wait_for(10_ms);  // sweep revokes and notifies meanwhile
    const SimTime before = job.ctx().now();
    ac.memcpy_h2d(p, util::Buffer::backed_zero(64_KiB));
    EXPECT_EQ(ac.daemon_rank(), job.cluster().daemon_rank(1));
    // Proactive: far quicker than the 50 ms timeout path.
    EXPECT_LT(job.ctx().now() - before, 10_ms);
  };
  cluster.submit(spec);
  cluster.run();
  const PoolStats stats = cluster.arm().stats();
  EXPECT_EQ(stats.revocations, 1u);
  EXPECT_EQ(stats.replacements, 1u);
}

// Runs a functional QR on one leased accelerator; with `die_at` set, the
// device breaks that long after the job starts and the session's
// replacement policy must carry the factorization to completion.
struct QrOutcome {
  std::vector<double> factored;
  SimDuration factor_time = 0;
  SimTime final_now = 0;
  std::uint32_t replacements = 0;
};

QrOutcome qr_with_death(SimDuration die_at, sim::ExecBackend backend) {
  rt::ClusterConfig cfg = small_cluster(/*cns=*/1, /*acs=*/2);
  cfg.registry = la::la_registry();
  cfg.sim_backend = backend;
  cfg.retry.replace_on_failure = true;
  rt::Cluster cluster(cfg);
  const int n = 96;
  QrOutcome out;
  rt::JobSpec spec;
  spec.accelerators_per_rank = 1;
  spec.body = [&](rt::JobContext& job) {
    if (die_at > 0) {
      job.cluster().break_accelerator(0, job.ctx().now() + die_at);
    }
    core::RemoteDeviceLink gpu(job.session()[0], job.ctx());
    std::vector<core::DeviceLink*> gpus{&gpu};
    la::HostMatrix a(n, n, /*functional=*/true);
    // Deterministic, well-conditioned test matrix.
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        a.at(i, j) = (i == j ? 10.0 : 0.0) + 1.0 / (1.0 + i + j);
      }
    }
    const la::FactorResult r = la::dgeqrf_hybrid(job.ctx(), gpus, a, 32);
    out.factor_time = r.factor_time;
    out.factored.assign(a.data(), a.data() + n * n);
  };
  cluster.submit(spec);
  cluster.run();
  out.final_now = cluster.engine().now();
  out.replacements = cluster.arm().stats().replacements;
  return out;
}

TEST(Recovery, QrCompletesDespiteMidRunDeviceDeath) {
  const auto backend = sim::default_exec_backend();
  const QrOutcome clean = qr_with_death(0, backend);
  ASSERT_GT(clean.factor_time, 0u);
  // Kill the device a quarter of the way through the clean run's schedule:
  // unambiguously mid-factorization.
  const QrOutcome faulty = qr_with_death(clean.factor_time / 4, backend);
  EXPECT_EQ(faulty.replacements, 1u);
  EXPECT_GT(faulty.factor_time, clean.factor_time);  // replay is not free
  // Replay reconstructed the device state exactly: the factorization result
  // is bit-identical to the fault-free run.
  ASSERT_EQ(faulty.factored.size(), clean.factored.size());
  for (std::size_t i = 0; i < clean.factored.size(); ++i) {
    ASSERT_EQ(faulty.factored[i], clean.factored[i]) << "element " << i;
  }
}

TEST(Recovery, QrRecoveryIsDeterministicAcrossBackends) {
  const QrOutcome clean = qr_with_death(0, sim::ExecBackend::kThread);
  const SimDuration die_at = clean.factor_time / 4;
  const QrOutcome thread = qr_with_death(die_at, sim::ExecBackend::kThread);
  EXPECT_EQ(thread.replacements, 1u);
  if (!kCoroutineAvailable) {
    GTEST_SKIP() << "coroutine backend disabled (sanitizer build)";
  }
  const QrOutcome coro = qr_with_death(die_at, sim::ExecBackend::kCoroutine);
  EXPECT_EQ(coro.replacements, thread.replacements);
  EXPECT_EQ(coro.factor_time, thread.factor_time);
  EXPECT_EQ(coro.final_now, thread.final_now);
  EXPECT_EQ(coro.factored, thread.factored);
}

TEST(Recovery, HeartbeatOverheadNegligibleOnFigure9Qr) {
  // Liveness must be cheap enough to leave on: the Figure-9 QR point
  // (N = 8064, three network-attached GPUs) may shift by at most 0.5% in
  // simulated time when every accelerator beats at the default 1 ms period.
  auto qr_time = [](bool heartbeats) {
    rt::ClusterConfig cc;
    cc.compute_nodes = 1;
    cc.accelerators = 3;
    cc.functional_gpus = false;
    cc.registry = la::la_registry();
    cc.heartbeat.enabled = heartbeats;
    rt::Cluster cluster(cc);
    la::FactorResult result;
    rt::JobSpec spec;
    spec.accelerators_per_rank = 3;
    spec.body = [&](rt::JobContext& job) {
      std::vector<std::unique_ptr<core::DeviceLink>> links;
      std::vector<core::DeviceLink*> gpus;
      for (std::size_t i = 0; i < job.session().size(); ++i) {
        links.push_back(std::make_unique<core::RemoteDeviceLink>(
            job.session()[i], job.ctx()));
      }
      for (auto& link : links) gpus.push_back(link.get());
      la::HostMatrix a(8064, 8064, /*functional=*/false);
      result = la::dgeqrf_hybrid(job.ctx(), gpus, a, /*nb=*/128);
    };
    cluster.submit(spec);
    cluster.run();
    return result.factor_time;
  };
  const SimDuration off = qr_time(false);
  const SimDuration on = qr_time(true);
  ASSERT_GT(off, 0u);
  const double shift =
      std::abs(static_cast<double>(on) - static_cast<double>(off)) /
      static_cast<double>(off);
  EXPECT_LT(shift, 0.005) << "off=" << off << " on=" << on;
}

TEST(Recovery, ReplacementFlowIsDeterministicAcrossBackends) {
  auto fingerprint = [](sim::ExecBackend backend) {
    rt::ClusterConfig cfg = hb_cluster(/*cns=*/1, /*acs=*/2);
    cfg.sim_backend = backend;
    cfg.retry.request_timeout = 2_ms;
    cfg.retry.replace_on_failure = true;
    rt::Cluster cluster(cfg);
    SimTime replaced_done = 0;
    rt::JobSpec spec;
    spec.body = [&](rt::JobContext& job) {
      auto accs = job.session().acquire(1);
      core::Accelerator& ac = *accs[0];
      const gpu::DevPtr p = ac.mem_alloc(1_MiB);
      ac.memcpy_h2d(p, util::Buffer::backed_zero(1_MiB));
      job.cluster().fail_accelerator_link(0, job.ctx().now());
      (void)ac.memcpy_d2h(p, 1_MiB);
      replaced_done = job.ctx().now();
      ac.mem_free(p);
    };
    cluster.submit(spec);
    cluster.run();
    return std::pair<SimTime, SimTime>(replaced_done, cluster.engine().now());
  };
  const auto thread = fingerprint(sim::ExecBackend::kThread);
  EXPECT_GT(thread.first, 0u);
  if (kCoroutineAvailable) {
    const auto coro = fingerprint(sim::ExecBackend::kCoroutine);
    EXPECT_EQ(coro.first, thread.first);
    EXPECT_EQ(coro.second, thread.second);
  }
}

}  // namespace
}  // namespace dacc::arm
