// Engine stress: many processes, many events, deterministic outcome.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "util/rng.hpp"

namespace dacc::sim {
namespace {

TEST(EngineStress, HundredProcessesTokenRing) {
  // A token circulates a ring of 100 processes 50 times.
  Engine engine;
  const int n = 100;
  const int laps = 50;
  std::vector<std::unique_ptr<Mailbox<int>>> boxes;
  for (int i = 0; i < n; ++i) {
    boxes.push_back(std::make_unique<Mailbox<int>>(engine));
  }
  int final_hops = 0;
  for (int i = 0; i < n; ++i) {
    engine.spawn("ring" + std::to_string(i), [&, i](Context& ctx) {
      const int rounds = laps + (i == 0 ? 1 : 0);
      for (int r = 0; r < rounds; ++r) {
        if (i == 0 && r == 0) {
          boxes[1]->put(1);  // inject the token
          continue;
        }
        const int hops = boxes[static_cast<std::size_t>(i)]->get(ctx);
        if (i == 0 && r == rounds - 1) {
          final_hops = hops;
          return;
        }
        ctx.wait_for(10);
        boxes[static_cast<std::size_t>((i + 1) % n)]->put(hops + 1);
      }
    });
  }
  engine.run();
  EXPECT_EQ(final_hops, n * laps);
  EXPECT_GT(engine.events_executed(), static_cast<std::uint64_t>(n * laps));
}

TEST(EngineStress, RandomWorkloadIsDeterministic) {
  auto run_once = [] {
    Engine engine;
    util::Rng rng(12345);
    Semaphore sem(engine, 3);
    std::uint64_t checksum = 0;
    for (int i = 0; i < 60; ++i) {
      const auto start = static_cast<SimDuration>(rng.next_below(10'000));
      const auto work = static_cast<SimDuration>(1 + rng.next_below(5'000));
      engine.spawn("w" + std::to_string(i), [&, start, work, i](Context& ctx) {
        ctx.wait_for(start);
        sem.acquire(ctx);
        ctx.wait_for(work);
        checksum ^= ctx.now() * static_cast<std::uint64_t>(i + 1);
        sem.release();
      });
    }
    engine.run();
    return std::pair(checksum, engine.now());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(EngineStress, TenThousandProcessesSteadyState) {
  // Two identical waves of processes on one engine. The second wave must
  // run entirely out of recycled resources: no new event-pool chunks, no
  // new coroutine stacks, no heap-boxed callbacks, and no growth in the
  // live-event high-water mark — the "zero allocations per event in steady
  // state" contract of the pooled queue.
  Engine engine;
  // Coroutine strands carry the processes under every backend except the
  // thread one (and any build that forces it for sanitizer visibility).
#if defined(DACC_SIM_FORCE_THREAD_BACKEND)
  const bool coro = false;
#else
  const bool coro = engine.backend() != ExecBackend::kThread;
#endif
  // The thread backend would need one OS thread per process; keep it to a
  // size a sanitizer build can host.
  const int n = coro ? 10'000 : 500;

  std::uint64_t done = 0;
  const auto wave = [&](int salt) {
    for (int i = 0; i < n; ++i) {
      engine.spawn("p" + std::to_string(salt) + "-" + std::to_string(i),
                   [&done, i, salt](Context& ctx) {
                     for (int hop = 0; hop < 4; ++hop) {
                       ctx.wait_for(1 + (i * 7 + salt + hop) % 97);
                     }
                     ctx.yield();
                     ++done;
                   });
    }
    engine.run();
  };

  wave(0);
  EXPECT_EQ(done, static_cast<std::uint64_t>(n));
  const EventQueue::Stats after_first = engine.event_stats();
  const std::uint64_t stacks_first = engine.stacks_created();
  EXPECT_EQ(after_first.heap_fallbacks, 0u);
  EXPECT_EQ(after_first.live, 0u);

  engine.reset_event_high_water();
  wave(1);
  EXPECT_EQ(done, static_cast<std::uint64_t>(2 * n));
  const EventQueue::Stats after_second = engine.event_stats();
  EXPECT_EQ(after_second.pool_nodes, after_first.pool_nodes);
  EXPECT_LE(after_second.high_water, after_first.high_water);
  EXPECT_EQ(after_second.heap_fallbacks, 0u);
  EXPECT_EQ(engine.stacks_created(), stacks_first);
  if (coro) {
    EXPECT_GE(stacks_first, static_cast<std::uint64_t>(n));
  } else {
    EXPECT_EQ(stacks_first, 0u);
  }
}

TEST(EngineStress, DeepEventChains) {
  // 100k chained events: the queue must not degrade or overflow.
  Engine engine;
  std::uint64_t count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100'000) engine.schedule_in(1, chain);
  };
  engine.schedule_at(0, chain);
  engine.run();
  EXPECT_EQ(count, 100'000u);
  EXPECT_EQ(engine.now(), 99'999u);
}

}  // namespace
}  // namespace dacc::sim
