// Asynchronous parallel-backend scheduling (DESIGN.md §5.2): the merged
// fallback when no safe horizon width exists (zero lookahead, or a
// zero-latency link crossing shards), topology-aware shard placement (the
// partitioner, DACC_SIM_SHARD_MAP, explicit maps), and the era-count /
// exposed-parallelism guard for the 129-node cluster scenario — the
// tier-1 check that the band-gap eras actually shrink the number of serial
// synchronization points without costing determinism.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

#include "common/ring.hpp"
#include "core/api.hpp"
#include "net/model_params.hpp"
#include "rt/cluster.hpp"
#include "sim/engine.hpp"
#include "util/units.hpp"

namespace dacc {
namespace {

using dacc::testing::RingOpts;
using dacc::testing::RingResult;
using dacc::testing::run_ring;

#if defined(DACC_SIM_FORCE_THREAD_BACKEND)
constexpr sim::ExecBackend kSerialBackend = sim::ExecBackend::kThread;
#else
constexpr sim::ExecBackend kSerialBackend = sim::ExecBackend::kCoroutine;
#endif

// ---------------------------------------------------------------------------
// Merged fallback: concurrency is surrendered, never correctness
// ---------------------------------------------------------------------------

TEST(ParallelAsync, ZeroLookaheadFallsBackToMergedSerialOrder) {
  RingOpts o;
  o.nodes = 8;
  o.chains = 4;
  o.hops = 48;
  o.lookahead = 0;  // no conservative horizon exists
  o.backend = kSerialBackend;
  const RingResult serial = run_ring(o);

  o.backend = sim::ExecBackend::kParallel;
  o.shards = 4;
  const RingResult par = run_ring(o);
  EXPECT_TRUE(par.same_simulation(serial));
  EXPECT_EQ(par.pstats.windows, 0u) << "no eras without a lookahead";
  EXPECT_EQ(par.pstats.merged_fallbacks, 1u);
  EXPECT_EQ(serial.pstats.merged_fallbacks, 0u);
}

TEST(ParallelAsync, PositiveLookaheadRunsWindowed) {
  RingOpts o;
  o.nodes = 8;
  o.chains = 4;
  o.hops = 48;
  o.backend = kSerialBackend;
  const RingResult serial = run_ring(o);

  o.backend = sim::ExecBackend::kParallel;
  o.shards = 4;
  const RingResult par = run_ring(o);
  EXPECT_TRUE(par.same_simulation(serial));
  EXPECT_GT(par.pstats.windows, 0u);
  EXPECT_EQ(par.pstats.merged_fallbacks, 0u);
  EXPECT_GT(par.pstats.parallel_events, 0u);
}

TEST(ParallelAsync, ZeroLatencyCrossShardLinkDegradesToMerged) {
  // One zero-latency link in an otherwise uniform topology. The override is
  // semantic (the 0->1 clamp floor drops to zero) and applies identically
  // in every backend; whether the engine can still run windowed depends
  // only on placement.
  RingOpts o;
  o.nodes = 4;
  o.chains = 2;
  o.hops = 40;
  o.lookahead = 1000;
  o.override_default = 1000;
  o.links = {{0, 1, 0}};
  o.backend = kSerialBackend;
  const RingResult serial = run_ring(o);

  // Force the zero-latency pair onto different shards (the partitioner
  // would never do this): the pair's lookahead cell is zero, so no safe
  // horizon width exists and the run must degrade to the merged drain.
  o.backend = sim::ExecBackend::kParallel;
  o.shards = 2;
  o.shard_map = {0, 1, 0, 1};
  const RingResult split = run_ring(o);
  EXPECT_TRUE(split.same_simulation(serial));
  EXPECT_EQ(split.pstats.windows, 0u);
  EXPECT_EQ(split.pstats.merged_fallbacks, 1u);

  // Co-locate the pair: the zero-latency link becomes shard-internal, the
  // cross-shard minimum is back to the full lookahead, eras resume.
  o.shard_map = {0, 0, 1, 1};
  const RingResult joined = run_ring(o);
  EXPECT_TRUE(joined.same_simulation(serial));
  EXPECT_GT(joined.pstats.windows, 0u);
  EXPECT_EQ(joined.pstats.merged_fallbacks, 0u);
}

// ---------------------------------------------------------------------------
// Shard placement: partitioner, environment map, explicit map
// ---------------------------------------------------------------------------

TEST(ParallelAsync, TopologyPartitionerColocatesShortLinkPairs) {
  sim::Engine engine(sim::ExecBackend::kParallel, 4);
  engine.set_node_count(8);
  engine.set_lookahead(1200);
  engine.set_lookahead_overrides(1200, {{0, 5, 100}, {2, 6, 100}});
  // Short-linked pairs land on one shard; the load rebalancer still spreads
  // the remaining singletons so every shard carries two nodes.
  EXPECT_EQ(engine.shard_of(0), engine.shard_of(5));
  EXPECT_EQ(engine.shard_of(2), engine.shard_of(6));
  std::set<int> used;
  std::vector<int> load(4, 0);
  for (int n = 0; n < 8; ++n) {
    const int s = engine.shard_of(n);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    used.insert(s);
    ++load[static_cast<std::size_t>(s)];
  }
  EXPECT_EQ(used.size(), 4u);
  for (const int l : load) EXPECT_EQ(l, 2);

  // And the partitioned placement is invisible in the results.
  RingOpts o;
  o.nodes = 8;
  o.chains = 4;
  o.hops = 48;
  o.lookahead = 1200;
  o.override_default = 1200;
  o.links = {{0, 5, 100}, {2, 6, 100}};
  o.backend = kSerialBackend;
  const RingResult serial = run_ring(o);
  o.backend = sim::ExecBackend::kParallel;
  o.shards = 4;
  const RingResult par = run_ring(o);
  EXPECT_TRUE(par.same_simulation(serial));
}

TEST(ParallelAsync, ShardMapEnvironmentVariableSelectsPlacement) {
  ::setenv("DACC_SIM_SHARD_MAP", "3,2,1,0", 1);
  {
    sim::Engine engine(sim::ExecBackend::kParallel, 4);
    engine.set_node_count(4);
    EXPECT_EQ(engine.shard_of(0), 3);
    EXPECT_EQ(engine.shard_of(1), 2);
    EXPECT_EQ(engine.shard_of(2), 1);
    EXPECT_EQ(engine.shard_of(3), 0);
  }
  // Wrong arity: warn and fall back to round robin.
  ::setenv("DACC_SIM_SHARD_MAP", "0,1", 1);
  {
    sim::Engine engine(sim::ExecBackend::kParallel, 4);
    engine.set_node_count(4);
    for (int n = 0; n < 4; ++n) EXPECT_EQ(engine.shard_of(n), n % 4);
  }
  // Out-of-range shard id: same fallback.
  ::setenv("DACC_SIM_SHARD_MAP", "0,9,0,0", 1);
  {
    sim::Engine engine(sim::ExecBackend::kParallel, 4);
    engine.set_node_count(4);
    for (int n = 0; n < 4; ++n) EXPECT_EQ(engine.shard_of(n), n % 4);
  }
  ::unsetenv("DACC_SIM_SHARD_MAP");
}

TEST(ParallelAsync, ExplicitShardMapValidates) {
  sim::Engine engine(sim::ExecBackend::kParallel, 2);
  engine.set_node_count(4);
  EXPECT_THROW(engine.set_shard_map({0, 1}), sim::SimError);        // size
  EXPECT_THROW(engine.set_shard_map({0, 1, 2, 0}), sim::SimError);  // range
  engine.set_shard_map({1, 0, 1, 0});
  EXPECT_EQ(engine.shard_of(0), 1);
  EXPECT_EQ(engine.shard_of(3), 0);
}

TEST(ParallelAsync, LatencyOverridesValidate) {
  sim::Engine engine(sim::ExecBackend::kParallel, 2);
  engine.set_node_count(4);
  EXPECT_THROW(engine.set_lookahead_overrides(1200, {{0, 0, 100}}),
               sim::SimError);  // self link
  EXPECT_THROW(engine.set_lookahead_overrides(1200, {{-1, 2, 100}}),
               sim::SimError);  // bad node
}

// ---------------------------------------------------------------------------
// 129-node cluster guard: band-gap eras cut the serial synchronization
// count and expose real parallelism, at zero determinism cost
// ---------------------------------------------------------------------------

struct ChurnOut {
  std::uint64_t events = 0;
  std::uint64_t switches = 0;
  SimTime final_now = 0;
  sim::Engine::ParallelStats pstats;
};

/// 64 CNs + 64 ACs + the ARM = 129 fabric nodes; every rank drives its
/// accelerator with async kernel bursts, so the per-node work is symmetric
/// and the lease churn crosses the whole fabric.
ChurnOut run_cluster_churn(sim::ExecBackend backend, int shards,
                           SimDuration band_gap) {
  rt::ClusterConfig cc;
  cc.compute_nodes = 64;
  cc.accelerators = 64;
  cc.functional_gpus = false;  // phantom devices: timing only
  cc.sim_backend = backend;
  cc.sim_shards = shards;
  cc.sim_band_gap = band_gap;
  rt::Cluster cluster(cc);

  rt::JobSpec spec;
  spec.name = "churn";
  spec.ranks = 64;
  spec.accelerators_per_rank = 1;
  spec.body = [](rt::JobContext& job) {
    core::Accelerator& ac = job.session()[0];
    const std::int64_t n = 1024;
    const gpu::DevPtr p = ac.mem_alloc(static_cast<std::uint64_t>(n) * 8);
    for (int b = 0; b < 8; ++b) {
      std::vector<core::Future> burst;
      burst.reserve(16);
      for (int i = 0; i < 16; ++i) {
        burst.push_back(ac.launch_async("dscal", {}, {n, 1.5, p}));
      }
      job.session().wait_all(burst);
    }
    ac.mem_free(p);
  };
  cluster.submit(spec);
  cluster.run();

  ChurnOut out;
  out.events = cluster.engine().events_executed();
  out.switches = cluster.engine().process_switches();
  out.final_now = cluster.engine().now();
  out.pstats = cluster.engine().parallel_stats();
  return out;
}

TEST(ParallelAsyncCluster, BandGapCutsWindowsAndExposesParallelism) {
  const SimDuration wire = net::FabricParams{}.wire_latency;

  // Baseline: eras one lookahead wide — the pre-async global-window
  // behavior, forced by pinning the band gap to the wire latency.
  const ChurnOut narrow =
      run_cluster_churn(sim::ExecBackend::kParallel, 16, wire);
  // Default: rt::Cluster auto-raises the band gap to 64x the wire latency,
  // so the shards run many lookaheads between global synchronizations.
  const ChurnOut wide = run_cluster_churn(sim::ExecBackend::kParallel, 16, 0);

  ASSERT_GT(narrow.pstats.windows, 0u);
  ASSERT_GT(wide.pstats.windows, 0u);
  EXPECT_GT(narrow.pstats.windows, 5 * wide.pstats.windows)
      << "band-gap eras must cut the serial window count >5x";

  ASSERT_GT(wide.pstats.critical_path_events, 0u);
  const double exposed =
      static_cast<double>(wide.pstats.parallel_events) /
      static_cast<double>(wide.pstats.critical_path_events);
  EXPECT_GE(exposed, 7.0) << "exposed parallelism regressed below 7x";

  // Determinism is untouched: the serial replay with the same (default)
  // band gap agrees event for event.
  const ChurnOut serial = run_cluster_churn(kSerialBackend, 0, 0);
  EXPECT_EQ(wide.events, serial.events);
  EXPECT_EQ(wide.switches, serial.switches);
  EXPECT_EQ(wide.final_now, serial.final_now);
}

}  // namespace
}  // namespace dacc
