#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dacc::sim {
namespace {

TEST(Mailbox, DeliversInFifoOrder) {
  Engine engine;
  Mailbox<int> box(engine);
  std::vector<int> got;
  engine.spawn("rx", [&](Context& ctx) {
    for (int i = 0; i < 3; ++i) got.push_back(box.get(ctx));
  });
  engine.spawn("tx", [&](Context& ctx) {
    ctx.wait_for(10);
    box.put(1);
    box.put(2);
    box.put(3);
  });
  engine.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Mailbox, ReceiverBlocksUntilMessage) {
  Engine engine;
  Mailbox<int> box(engine);
  SimTime got_at = 0;
  engine.spawn("rx", [&](Context& ctx) {
    (void)box.get(ctx);
    got_at = ctx.now();
  });
  engine.spawn("tx", [&](Context& ctx) {
    ctx.wait_for(500);
    box.put(7);
  });
  engine.run();
  EXPECT_EQ(got_at, 500u);
}

TEST(Mailbox, TryGetDoesNotBlock) {
  Engine engine;
  Mailbox<int> box(engine);
  engine.spawn("p", [&](Context&) {
    EXPECT_FALSE(box.try_get().has_value());
    box.put(42);
    auto v = box.try_get();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
  });
  engine.run();
}

TEST(Mailbox, MultipleReceiversServedFifo) {
  Engine engine;
  Mailbox<int> box(engine);
  std::vector<std::string> served;
  for (int r = 0; r < 3; ++r) {
    engine.spawn("rx" + std::to_string(r), [&, r](Context& ctx) {
      const int v = box.get(ctx);
      served.push_back("rx" + std::to_string(r) + ":" + std::to_string(v));
    });
  }
  engine.spawn("tx", [&](Context& ctx) {
    for (int i = 0; i < 3; ++i) {
      ctx.wait_for(10);
      box.put(i);
    }
  });
  engine.run();
  EXPECT_EQ(served, (std::vector<std::string>{"rx0:0", "rx1:1", "rx2:2"}));
}

TEST(Semaphore, LimitsConcurrency) {
  Engine engine;
  Semaphore sem(engine, 2);
  int active = 0;
  int peak = 0;
  for (int i = 0; i < 6; ++i) {
    engine.spawn("w" + std::to_string(i), [&](Context& ctx) {
      sem.acquire(ctx);
      ++active;
      peak = std::max(peak, active);
      ctx.wait_for(100);
      --active;
      sem.release();
    });
  }
  engine.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(active, 0);
}

TEST(Semaphore, TryAcquire) {
  Engine engine;
  Semaphore sem(engine, 1);
  engine.spawn("p", [&](Context&) {
    EXPECT_TRUE(sem.try_acquire());
    EXPECT_FALSE(sem.try_acquire());
    sem.release();
    EXPECT_TRUE(sem.try_acquire());
    sem.release();
  });
  engine.run();
}

TEST(Completion, ReleasesAllWaiters) {
  Engine engine;
  Completion done(engine);
  std::vector<SimTime> woke;
  for (int i = 0; i < 3; ++i) {
    engine.spawn("w" + std::to_string(i), [&](Context& ctx) {
      done.wait(ctx);
      woke.push_back(ctx.now());
    });
  }
  engine.spawn("signaller", [&](Context& ctx) {
    ctx.wait_for(250);
    done.complete();
  });
  engine.run();
  ASSERT_EQ(woke.size(), 3u);
  for (SimTime t : woke) EXPECT_EQ(t, 250u);
}

TEST(Completion, WaitAfterCompleteReturnsImmediately) {
  Engine engine;
  Completion done(engine);
  engine.spawn("p", [&](Context& ctx) {
    done.complete();
    const SimTime before = ctx.now();
    done.wait(ctx);
    EXPECT_EQ(ctx.now(), before);
  });
  engine.run();
}

TEST(WaitQueue, NotifyOneWakesInFifoOrder) {
  Engine engine;
  WaitQueue q(engine);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    engine.spawn("w" + std::to_string(i), [&, i](Context& ctx) {
      q.wait(ctx);
      order.push_back(i);
    });
  }
  engine.spawn("n", [&](Context& ctx) {
    ctx.wait_for(10);
    EXPECT_EQ(q.waiting(), 3u);
    q.notify_one();
    ctx.wait_for(10);
    q.notify_all();
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace dacc::sim
