#include "sim/resource.hpp"

#include <gtest/gtest.h>

namespace dacc::sim {
namespace {

TEST(SerialResource, FirstOccupancyStartsImmediately) {
  SerialResource r;
  const auto iv = r.occupy(100, 50);
  EXPECT_EQ(iv.start, 100u);
  EXPECT_EQ(iv.end, 150u);
}

TEST(SerialResource, BackToBackOperationsSerialize) {
  SerialResource r;
  (void)r.occupy(0, 100);
  const auto second = r.occupy(0, 100);
  EXPECT_EQ(second.start, 100u);
  EXPECT_EQ(second.end, 200u);
}

TEST(SerialResource, IdleGapIsNotBackfilled) {
  SerialResource r;
  (void)r.occupy(0, 10);
  const auto late = r.occupy(1000, 10);
  EXPECT_EQ(late.start, 1000u);
  // A later request for an earlier time still queues after the last one.
  const auto after = r.occupy(5, 10);
  EXPECT_EQ(after.start, 1010u);
}

TEST(SerialResource, TracksUtilization) {
  SerialResource r;
  (void)r.occupy(0, 30);
  (void)r.occupy(0, 20);
  EXPECT_EQ(r.busy_total(), 50u);
  EXPECT_EQ(r.operations(), 2u);
  r.reset();
  EXPECT_EQ(r.busy_total(), 0u);
  EXPECT_EQ(r.next_free(), 0u);
}

TEST(SerialResource, ZeroBusyOccupancy) {
  SerialResource r;
  const auto iv = r.occupy(42, 0);
  EXPECT_EQ(iv.start, 42u);
  EXPECT_EQ(iv.end, 42u);
}

}  // namespace
}  // namespace dacc::sim
