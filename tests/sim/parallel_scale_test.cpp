// 10k-node scaling scenario for the asynchronous parallel backend: a
// fabric two orders of magnitude past the paper's cluster, driven as a
// multi-chain ring so every hop crosses shards through the staged inboxes
// and horizon clocks. Sized to stay fast under ThreadSanitizer —
// scripts/check_tsan.sh runs this suite (ctest -R ParallelScale) with a
// real multi-thread worker pool, which is the proof vehicle for the
// lock-free horizon protocol.
#include <gtest/gtest.h>

#include <vector>

#include "common/ring.hpp"
#include "sim/engine.hpp"

namespace dacc {
namespace {

using dacc::testing::RingOpts;
using dacc::testing::RingResult;
using dacc::testing::run_ring;

#if defined(DACC_SIM_FORCE_THREAD_BACKEND)
constexpr sim::ExecBackend kSerialBackend = sim::ExecBackend::kThread;
#else
constexpr sim::ExecBackend kSerialBackend = sim::ExecBackend::kCoroutine;
#endif

TEST(ParallelScale, TenThousandNodeRingIsBitIdenticalToSerial) {
  RingOpts o;
  o.nodes = 10'000;
  o.chains = 64;
  o.hops = 80;  // 5120 hop events: TSan-sized, every one cross-shard
  o.step = 50;
  o.lookahead = 1000;
  o.backend = kSerialBackend;
  const RingResult serial = run_ring(o);

  o.backend = sim::ExecBackend::kParallel;
  o.shards = 16;
  const RingResult par = run_ring(o);
  EXPECT_TRUE(par.same_simulation(serial));
  EXPECT_GT(par.pstats.windows, 0u);
  EXPECT_EQ(par.pstats.merged_fallbacks, 0u);
  EXPECT_GT(par.events, 5000u);
}

TEST(ParallelScale, ShardCountInvariantAtTenThousandNodes) {
  RingOpts o;
  o.nodes = 10'000;
  o.chains = 32;
  o.hops = 40;
  o.step = 50;
  o.lookahead = 1000;
  o.backend = sim::ExecBackend::kParallel;
  o.shards = 1;
  const RingResult one = run_ring(o);
  for (const int shards : {4, 16, 64}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    o.shards = shards;
    const RingResult s = run_ring(o);
    EXPECT_TRUE(s.same_simulation(one));
  }
}

TEST(ParallelScale, PartitionedRingKeepsNeighborsColocated) {
  // Make every ring edge a short link: the partitioner folds the whole
  // ring into one union-find group and splits it into contiguous chunks,
  // so almost every hop is shard-internal.
  const int nodes = 1000;
  RingOpts o;
  o.nodes = nodes;
  o.chains = 16;
  o.hops = 60;
  o.lookahead = 1200;
  o.override_default = 1200;
  for (int i = 0; i < nodes; ++i) {
    o.links.push_back({i, (i + 1) % nodes, 100});
  }
  o.backend = kSerialBackend;
  const RingResult serial = run_ring(o);

  o.backend = sim::ExecBackend::kParallel;
  o.shards = 16;
  const RingResult par = run_ring(o);
  EXPECT_TRUE(par.same_simulation(serial));
  EXPECT_GT(par.pstats.windows, 0u);

  // Contiguity check on the actual placement: at most one shard change per
  // chunk boundary (15 internal splits + the wrap).
  sim::Engine engine(sim::ExecBackend::kParallel, 16);
  engine.set_node_count(nodes);
  engine.set_lookahead(o.lookahead);
  engine.set_lookahead_overrides(o.override_default, o.links);
  int breaks = 0;
  for (int i = 0; i < nodes; ++i) {
    if (engine.shard_of(i) != engine.shard_of((i + 1) % nodes)) ++breaks;
  }
  EXPECT_LE(breaks, 16);
}

}  // namespace
}  // namespace dacc
