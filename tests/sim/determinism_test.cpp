// Cross-backend determinism contract (sim/exec.hpp): the coroutine, thread
// and parallel execution backends must produce bit-identical simulations —
// same event count, same final clock, same trace span sequence, same
// numerical results — every backend must reproduce itself exactly across
// runs, and the parallel backend must be invariant in its shard count.
//
// The workload deliberately mixes everything that exercises event ordering:
// a functional QR factorization on network-attached GPUs (bulk pipelined
// transfers + kernel streams), an MP2C fluid mini-run over two ranks
// (halo exchange, migration, collective reductions), and fault injection
// mid-transfer (error unwinding through the wire protocol).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "la/factorizations.hpp"
#include "la/kernels.hpp"
#include "la/matrix.hpp"
#include "mdsim/mp2c.hpp"
#include "rt/cluster.hpp"
#include "sim/exec.hpp"
#include "util/units.hpp"

namespace dacc {
namespace {

struct Fingerprint {
  std::uint64_t events = 0;
  std::uint64_t switches = 0;
  SimTime final_now = 0;
  SimDuration qr_time = 0;
  double qr_gflops = 0.0;
  SimDuration mp2c_elapsed = 0;
  double mp2c_ke = 0.0;
  double mp2c_px = 0.0;
  std::uint64_t mp2c_particles0 = 0;
  std::uint64_t mp2c_migrated0 = 0;
  bool fault_seen = false;
  std::vector<std::string> spans;
  // Recovery phase (heartbeats, revocation, transparent replacement).
  SimTime rec_final_now = 0;
  SimTime rec_replaced_at = 0;
  std::uint64_t rec_events = 0;
  std::uint64_t rec_heartbeats = 0;
  std::uint32_t rec_revocations = 0;
  std::uint32_t rec_replacements = 0;
  double rec_checksum = 0.0;
  // Batched command-stream phase (rpc kBatch frames on the wire).
  SimTime bat_final_now = 0;
  std::uint64_t bat_events = 0;
  std::uint64_t bat_msgs = 0;
  std::uint64_t bat_ops = 0;
  std::uint64_t bat_flushes = 0;
  double bat_checksum = 0.0;
};

Fingerprint run_mixed(sim::ExecBackend backend, int shards = 0) {
  auto registry = la::la_registry();
  mdsim::register_mdsim_kernels(*registry);

  rt::ClusterConfig config;
  config.compute_nodes = 3;
  config.accelerators = 3;
  config.functional_gpus = true;
  config.trace = true;
  config.registry = registry;
  config.sim_backend = backend;
  config.sim_shards = shards;
  rt::Cluster cluster(config);

  Fingerprint fp;

  // Phase 1: QR and MP2C run concurrently, contending for the fabric.
  la::FactorResult qr;
  rt::JobSpec qr_job;
  qr_job.name = "qr";
  qr_job.accelerators_per_rank = 1;
  qr_job.body = [&](rt::JobContext& job) {
    core::RemoteDeviceLink gpu(job.session()[0], job.ctx());
    std::vector<core::DeviceLink*> gpus{&gpu};
    la::HostMatrix a(96, 96, /*functional=*/true);
    qr = la::dgeqrf_hybrid(job.ctx(), gpus, a, /*nb=*/32);
  };
  cluster.submit(qr_job, /*first_cn=*/0);

  std::array<mdsim::Mp2cResult, 2> mp2c;
  rt::JobSpec mp2c_job;
  mp2c_job.name = "mp2c";
  mp2c_job.ranks = 2;
  mp2c_job.accelerators_per_rank = 1;
  mp2c_job.body = [&](rt::JobContext& job) {
    core::RemoteDeviceLink gpu(job.session()[0], job.ctx());
    mdsim::SrdParams srd;
    srd.steps = 6;
    mp2c[static_cast<std::size_t>(job.rank())] =
        mdsim::run_mp2c(job, &gpu, /*total_particles=*/2000, srd);
  };
  cluster.submit(mp2c_job, /*first_cn=*/1);
  cluster.run();

  // Phase 2: fault injection — the leased accelerator breaks mid-D2H and
  // the error must unwind cleanly through the middleware.
  rt::JobSpec fault_job;
  fault_job.name = "fault";
  fault_job.accelerators_per_rank = 1;
  fault_job.body = [&](rt::JobContext& job) {
    core::Accelerator& ac = job.session()[0];
    const gpu::DevPtr p = ac.mem_alloc(64_MiB);
    for (int i = 0; i < 3; ++i) {
      job.cluster().break_accelerator(i, job.ctx().now() + 5_ms);
    }
    try {
      (void)ac.memcpy_d2h(p, 64_MiB);
    } catch (const core::AcError&) {
      fp.fault_seen = true;
    }
  };
  cluster.submit(fault_job, /*first_cn=*/2);
  cluster.run();

  fp.events = cluster.engine().events_executed();
  fp.switches = cluster.engine().process_switches();
  fp.final_now = cluster.engine().now();
  fp.qr_time = qr.factor_time;
  fp.qr_gflops = qr.gflops;
  fp.mp2c_elapsed = mp2c[0].elapsed;
  fp.mp2c_ke = mp2c[0].kinetic_energy;
  fp.mp2c_px = mp2c[0].momentum[0];
  fp.mp2c_particles0 = mp2c[0].local_particles;
  fp.mp2c_migrated0 = mp2c[0].migrated_out;
  fp.spans.reserve(cluster.tracer().spans().size());
  for (const auto& s : cluster.tracer().spans()) {
    std::ostringstream os;
    os << s.track << '|' << s.name << '|' << s.begin << '|' << s.end;
    fp.spans.push_back(os.str());
  }

  // Phase 3: failure recovery on a fresh cluster — heartbeat-driven
  // revocation plus transparent replacement must replay identically under
  // either backend (timer events from pacers, sweeps, timeouts and the
  // retry/backoff ladder all interleave here).
  rt::ClusterConfig rec_config;
  rec_config.compute_nodes = 1;
  rec_config.accelerators = 2;
  rec_config.functional_gpus = true;
  rec_config.sim_backend = backend;
  rec_config.heartbeat.enabled = true;
  rec_config.heartbeat.period = 1_ms;
  rec_config.heartbeat.miss_threshold = 3;
  rec_config.retry.request_timeout = 5_ms;
  rec_config.retry.replace_on_failure = true;
  rec_config.sim_shards = shards;
  rt::Cluster rec(rec_config);
  rt::JobSpec rec_job;
  rec_job.name = "recovery";
  rec_job.body = [&](rt::JobContext& job) {
    auto accs = job.session().acquire(1);
    core::Accelerator& ac = *accs[0];
    const std::int64_t n = 4096;
    const gpu::DevPtr p = ac.mem_alloc(static_cast<std::uint64_t>(n) * 8);
    ac.launch("fill_f64", {}, {p, n, 1.5});
    job.cluster().fail_accelerator_link(0, job.ctx().now());
    job.ctx().wait_for(10_ms);  // let the sweep revoke and notify
    ac.launch("dscal", {}, {n, 2.0, p});  // consumed notice -> replacement
    fp.rec_replaced_at = job.ctx().now();
    const util::Buffer out =
        ac.memcpy_d2h(p, static_cast<std::uint64_t>(n) * 8);
    for (const double v : out.as<double>()) fp.rec_checksum += v;
    ac.mem_free(p);
  };
  rec.submit(rec_job);
  rec.run();
  fp.rec_final_now = rec.engine().now();
  fp.rec_events = rec.engine().events_executed();
  const arm::PoolStats rec_stats = rec.arm().stats();
  fp.rec_heartbeats = rec_stats.heartbeats;
  fp.rec_revocations = rec_stats.revocations;
  fp.rec_replacements = rec_stats.replacements;

  // Phase 4: batched command streams. An async launch burst coalesces into
  // kBatch frames; the frame boundaries (visible as flush counts and message
  // totals) and the simulated results must be bit-identical across backends
  // and shard counts.
  rt::ClusterConfig bat_config;
  bat_config.compute_nodes = 1;
  bat_config.accelerators = 1;
  bat_config.functional_gpus = true;
  bat_config.metrics = true;
  bat_config.sim_backend = backend;
  bat_config.sim_shards = shards;
  bat_config.batch = {/*enabled=*/true, /*watermark=*/8};
  rt::Cluster bat(bat_config);
  rt::JobSpec bat_job;
  bat_job.name = "batched";
  bat_job.accelerators_per_rank = 1;
  bat_job.body = [&](rt::JobContext& job) {
    core::Accelerator& ac = job.session()[0];
    const std::int64_t n = 256;
    const auto bytes = static_cast<std::uint64_t>(n) * 8;
    const gpu::DevPtr p = ac.mem_alloc(bytes);
    ac.launch("fill_f64", {}, {p, n, 1.0});
    std::vector<core::Future> burst;
    for (int i = 0; i < 20; ++i) {
      burst.push_back(ac.launch_async("dscal", {}, {n, 1.0 + 0.05 * i, p}));
    }
    job.session().wait_all(burst);
    const util::Buffer out = ac.memcpy_d2h(p, bytes);
    for (const double v : out.as<double>()) fp.bat_checksum += v;
    ac.mem_free(p);
  };
  bat.submit(bat_job);
  bat.run();
  fp.bat_final_now = bat.engine().now();
  fp.bat_events = bat.engine().events_executed();
  const std::string chan =
      "{chan=\"fe-r" + std::to_string(bat.cn_rank(0)) + "\"}";
  fp.bat_msgs = bat.metrics().counter_value("dacc_rpc_msgs_total" + chan);
  fp.bat_ops = bat.metrics().counter_value("dacc_rpc_ops_total" + chan);
  fp.bat_flushes = bat.metrics().histogram_count("dacc_rpc_batch_size" + chan);
  return fp;
}

void expect_identical(const Fingerprint& a, const Fingerprint& b,
                      const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.final_now, b.final_now);
  EXPECT_EQ(a.qr_time, b.qr_time);
  EXPECT_EQ(a.qr_gflops, b.qr_gflops);  // bit-identical, not approximate
  EXPECT_EQ(a.mp2c_elapsed, b.mp2c_elapsed);
  EXPECT_EQ(a.mp2c_ke, b.mp2c_ke);
  EXPECT_EQ(a.mp2c_px, b.mp2c_px);
  EXPECT_EQ(a.mp2c_particles0, b.mp2c_particles0);
  EXPECT_EQ(a.mp2c_migrated0, b.mp2c_migrated0);
  EXPECT_EQ(a.spans, b.spans);
  EXPECT_EQ(a.rec_final_now, b.rec_final_now);
  EXPECT_EQ(a.rec_replaced_at, b.rec_replaced_at);
  EXPECT_EQ(a.rec_events, b.rec_events);
  EXPECT_EQ(a.rec_heartbeats, b.rec_heartbeats);
  EXPECT_EQ(a.rec_revocations, b.rec_revocations);
  EXPECT_EQ(a.rec_replacements, b.rec_replacements);
  EXPECT_EQ(a.rec_checksum, b.rec_checksum);  // bit-identical
  EXPECT_EQ(a.bat_final_now, b.bat_final_now);
  EXPECT_EQ(a.bat_events, b.bat_events);
  EXPECT_EQ(a.bat_msgs, b.bat_msgs);  // identical frame coalescing
  EXPECT_EQ(a.bat_ops, b.bat_ops);
  EXPECT_EQ(a.bat_flushes, b.bat_flushes);
  EXPECT_EQ(a.bat_checksum, b.bat_checksum);  // bit-identical
}

void expect_sane(const Fingerprint& fp) {
  EXPECT_GT(fp.events, 1000u);
  EXPECT_GT(fp.switches, 100u);
  EXPECT_GT(fp.qr_time, 0);
  EXPECT_GT(fp.mp2c_elapsed, 0);
  EXPECT_TRUE(fp.fault_seen);
  EXPECT_FALSE(fp.spans.empty());
  EXPECT_EQ(fp.rec_revocations, 1u);
  EXPECT_EQ(fp.rec_replacements, 1u);
  EXPECT_GT(fp.rec_heartbeats, 0u);
  EXPECT_GT(fp.rec_replaced_at, 10'000'000u);  // after the idle wait
  EXPECT_DOUBLE_EQ(fp.rec_checksum, 4096 * 3.0);  // 1.5 * 2.0 per element
  // Batched phase: 24 ops (alloc + fill + 20 dscal + d2h + free), with the
  // async burst coalesced so the wire carries fewer messages than 2x ops.
  EXPECT_EQ(fp.bat_ops, 24u);
  EXPECT_GT(fp.bat_flushes, 0u);
  EXPECT_LT(fp.bat_msgs, 2 * fp.bat_ops);
  EXPECT_GT(fp.bat_checksum, 0.0);
}

#if defined(DACC_SIM_FORCE_THREAD_BACKEND)
constexpr bool kCoroutineAvailable = false;
#else
constexpr bool kCoroutineAvailable = true;
#endif

TEST(Determinism, ThreadBackendReplaysExactly) {
  const Fingerprint a = run_mixed(sim::ExecBackend::kThread);
  const Fingerprint b = run_mixed(sim::ExecBackend::kThread);
  expect_sane(a);
  expect_identical(a, b, "thread vs thread");
}

TEST(Determinism, CoroutineBackendReplaysExactly) {
  if (!kCoroutineAvailable) {
    GTEST_SKIP() << "coroutine backend disabled (sanitizer build)";
  }
  const Fingerprint a = run_mixed(sim::ExecBackend::kCoroutine);
  const Fingerprint b = run_mixed(sim::ExecBackend::kCoroutine);
  expect_sane(a);
  expect_identical(a, b, "coroutine vs coroutine");
}

TEST(Determinism, ParallelBackendReplaysExactly) {
  const Fingerprint a = run_mixed(sim::ExecBackend::kParallel, /*shards=*/4);
  const Fingerprint b = run_mixed(sim::ExecBackend::kParallel, /*shards=*/4);
  expect_sane(a);
  expect_identical(a, b, "parallel vs parallel");
}

TEST(Determinism, BackendsProduceIdenticalSimulations) {
  // The three-way contract: every backend replays the same simulation,
  // bit for bit. The parallel run uses four shards so the windowed
  // scheduler, staged inboxes and barrier merge are all on the line.
  const Fingerprint thread = run_mixed(sim::ExecBackend::kThread);
  const Fingerprint par = run_mixed(sim::ExecBackend::kParallel, /*shards=*/4);
  expect_sane(thread);
  expect_identical(thread, par, "thread vs parallel");
  if (kCoroutineAvailable) {
    const Fingerprint coro = run_mixed(sim::ExecBackend::kCoroutine);
    expect_identical(coro, thread, "coroutine vs thread");
  }
}

TEST(Determinism, ShardCountInvariance) {
  // Shard topology must be invisible in the results: one shard per node,
  // two nodes per shard, everything on one shard, more shards than nodes —
  // identical simulations.
  const Fingerprint s1 = run_mixed(sim::ExecBackend::kParallel, /*shards=*/1);
  const Fingerprint s2 = run_mixed(sim::ExecBackend::kParallel, /*shards=*/2);
  const Fingerprint s4 = run_mixed(sim::ExecBackend::kParallel, /*shards=*/4);
  const Fingerprint s8 = run_mixed(sim::ExecBackend::kParallel, /*shards=*/8);
  const Fingerprint s16 =
      run_mixed(sim::ExecBackend::kParallel, /*shards=*/16);
  expect_sane(s1);
  expect_identical(s1, s2, "1 shard vs 2 shards");
  expect_identical(s1, s4, "1 shard vs 4 shards");
  expect_identical(s1, s8, "1 shard vs 8 shards");
  expect_identical(s1, s16, "1 shard vs 16 shards");
}

// ---------------------------------------------------------------------------
// Skewed, heterogeneous-latency topology: one short link plus several
// long links. The per-node-pair overrides are semantic (they move clamp
// floors in every backend), the per-shard-pair lookahead matrix and the
// topology partitioner only consume them — so results must stay invariant
// across backends AND shard counts even when the placement changes.
// ---------------------------------------------------------------------------

struct SkewedFingerprint {
  std::uint64_t events = 0;
  std::uint64_t switches = 0;
  SimTime final_now = 0;
  double checksum = 0.0;

  bool operator==(const SkewedFingerprint& other) const = default;
};

SkewedFingerprint run_skewed(sim::ExecBackend backend, int shards) {
  rt::ClusterConfig config;
  config.compute_nodes = 4;
  config.accelerators = 4;
  config.functional_gpus = true;
  config.sim_backend = backend;
  config.sim_shards = shards;
  // 9 fabric nodes (4 CN + 4 AC + ARM). One fast link, many slow ones:
  // the partitioner co-locates the fast pair and the pair matrix keeps
  // every other shard pair at its (long) latency floor.
  config.fabric.link_latency_overrides = {
      {0, 1, 300},    // the short link
      {2, 3, 4800},   // long links, skewing the latency spread
      {4, 5, 9600},
      {6, 7, 7200},
      {0, 8, 4800},
  };
  rt::Cluster cluster(config);

  SkewedFingerprint fp;
  rt::JobSpec job;
  job.name = "skewed";
  job.ranks = 4;
  job.accelerators_per_rank = 1;
  job.body = [&fp](rt::JobContext& ctx) {
    core::Accelerator& ac = ctx.session()[0];
    const std::int64_t n = 512;
    const auto bytes = static_cast<std::uint64_t>(n) * 8;
    const gpu::DevPtr p = ac.mem_alloc(bytes);
    ac.launch("fill_f64", {}, {p, n, 1.0 + ctx.rank()});
    ac.launch("dscal", {}, {n, 0.5, p});
    // Ring exchange over the skewed fabric (even ranks send first so the
    // rendezvous pairs up): every rank's traffic crosses short and long
    // links.
    const int next = (ctx.rank() + 1) % ctx.size();
    const int prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
    if (ctx.rank() % 2 == 0) {
      ctx.mpi().send(ctx.job_comm(), next, 11, util::Buffer::phantom(32_KiB));
      (void)ctx.mpi().recv(ctx.job_comm(), prev, 11);
    } else {
      (void)ctx.mpi().recv(ctx.job_comm(), prev, 11);
      ctx.mpi().send(ctx.job_comm(), next, 11, util::Buffer::phantom(32_KiB));
    }
    const util::Buffer out = ac.memcpy_d2h(p, bytes);
    if (ctx.rank() == 0) {
      for (const double v : out.as<double>()) fp.checksum += v;
    }
    ac.mem_free(p);
  };
  cluster.submit(job);
  cluster.run();
  fp.events = cluster.engine().events_executed();
  fp.switches = cluster.engine().process_switches();
  fp.final_now = cluster.engine().now();
  return fp;
}

TEST(Determinism, SkewedTopologyBackendInvariance) {
  const SkewedFingerprint thread = run_skewed(sim::ExecBackend::kThread, 0);
  EXPECT_GT(thread.events, 100u);
  EXPECT_DOUBLE_EQ(thread.checksum, 512 * 0.5);  // rank 0: fill 1.0, scale
  EXPECT_EQ(run_skewed(sim::ExecBackend::kParallel, 4), thread);
  if (kCoroutineAvailable) {
    EXPECT_EQ(run_skewed(sim::ExecBackend::kCoroutine, 0), thread);
  }
}

TEST(Determinism, SkewedTopologyShardCountInvariance) {
  const SkewedFingerprint one = run_skewed(sim::ExecBackend::kParallel, 1);
  for (const int shards : {2, 4, 8, 16}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    EXPECT_EQ(run_skewed(sim::ExecBackend::kParallel, shards), one);
  }
}

TEST(Determinism, DefaultBackendReplaysExactly) {
  // Replays under whatever DACC_SIM_BACKEND / DACC_SIM_PARALLEL_WORKERS
  // selects — this is the variant ctest registers once per backend label.
  const Fingerprint a =
      run_mixed(sim::default_exec_backend(), sim::default_parallel_shards());
  const Fingerprint b =
      run_mixed(sim::default_exec_backend(), sim::default_parallel_shards());
  expect_sane(a);
  expect_identical(a, b, "default backend replay");
}

}  // namespace
}  // namespace dacc
