#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dacc::sim {
namespace {

TEST(Tracer, RecordsSpans) {
  Tracer t;
  EXPECT_TRUE(t.empty());
  t.record("daemon-r1", "MemAlloc", 100, 200);
  t.record("daemon-r1", "MemcpyHtoD", 200, 5000);
  t.record("fe-r0-ac1", "h2d 8MiB", 150, 5100);
  EXPECT_EQ(t.size(), 3u);
  const auto daemon = t.track("daemon-r1");
  ASSERT_EQ(daemon.size(), 2u);
  EXPECT_EQ(daemon[0].name, "MemAlloc");
  EXPECT_EQ(daemon[1].end, 5000u);
  EXPECT_EQ(t.track("nope").size(), 0u);
}

TEST(Tracer, RejectsBackwardsSpans) {
  Tracer t;
  EXPECT_THROW(t.record("x", "y", 10, 5), std::invalid_argument);
}

TEST(Tracer, ChromeJsonContainsEventsAndTrackNames) {
  Tracer t;
  t.record("daemon-r1", "KernelRun", 1000, 8000);
  t.record("fe-r0-ac1", "launch \"quoted\"", 500, 9000);
  std::ostringstream os;
  t.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("KernelRun"), std::string::npos);
  EXPECT_NE(json.find("daemon-r1"), std::string::npos);
  // Quotes in names are escaped.
  EXPECT_NE(json.find("launch \\\"quoted\\\""), std::string::npos);
  // ts/dur are in microseconds of simulated time.
  EXPECT_NE(json.find("\"ts\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":7"), std::string::npos);
}

TEST(Tracer, ChromeJsonEscapesControlCharacters) {
  // Regression: write_escaped used to pass \n, \t and other control bytes
  // straight through, producing invalid JSON that Perfetto rejects.
  Tracer t;
  t.record("tr\nack", "multi\nline\tname\x01", 0, 100);
  std::ostringstream os;
  t.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("multi\\nline\\tname\\u0001"), std::string::npos);
  EXPECT_NE(json.find("tr\\nack"), std::string::npos);
  // No raw control bytes survive in the output (bar the final newline).
  for (std::size_t i = 0; i + 1 < json.size(); ++i) {
    EXPECT_GE(static_cast<unsigned char>(json[i]), 0x20u) << "at byte " << i;
  }
  EXPECT_EQ(json.back(), '\n');
}

TEST(Tracer, FlowEventsStitchParentToChild) {
  Tracer t;
  t.record("fe-r0-ac1", "h2d", 100, 9000, /*trace_id=*/77, /*span_id=*/77,
           /*parent_id=*/0);
  t.record("daemon-r1", "MemcpyHtoD", 2000, 8000, 77, 501, 77);
  t.record("nic-r9", "tx", 3000, 3500, 77, 502, 999);  // parent not recorded
  std::ostringstream os;
  t.write_chrome_json(os);
  const std::string json = os.str();
  // Causal ids ride in args on the X events.
  EXPECT_NE(json.find("\"args\":{\"trace\":77,\"span\":77,\"parent\":0}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"trace\":77,\"span\":501,\"parent\":77}"),
            std::string::npos);
  // One s/f flow pair stitches daemon span 501 to its recorded parent; the
  // orphan (parent 999 never recorded) gets none.
  EXPECT_NE(json.find("\"ph\":\"s\",\"cat\":\"flow\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"flow\""),
            std::string::npos);
  EXPECT_NE(json.find("\"id\":501"), std::string::npos);
  EXPECT_EQ(json.find("\"id\":502"), std::string::npos);
}

TEST(Tracer, SpansWithoutTraceContextCarryNoArgs) {
  Tracer t;
  t.record("daemon-r1", "MemAlloc", 0, 10);
  std::ostringstream os;
  t.write_chrome_json(os);
  EXPECT_EQ(os.str().find("\"args\":{\"trace\""), std::string::npos);
}

TEST(Tracer, ClearEmpties) {
  Tracer t;
  t.record("a", "b", 0, 1);
  t.clear();
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace dacc::sim
