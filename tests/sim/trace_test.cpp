#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dacc::sim {
namespace {

TEST(Tracer, RecordsSpans) {
  Tracer t;
  EXPECT_TRUE(t.empty());
  t.record("daemon-r1", "MemAlloc", 100, 200);
  t.record("daemon-r1", "MemcpyHtoD", 200, 5000);
  t.record("fe-r0-ac1", "h2d 8MiB", 150, 5100);
  EXPECT_EQ(t.size(), 3u);
  const auto daemon = t.track("daemon-r1");
  ASSERT_EQ(daemon.size(), 2u);
  EXPECT_EQ(daemon[0].name, "MemAlloc");
  EXPECT_EQ(daemon[1].end, 5000u);
  EXPECT_EQ(t.track("nope").size(), 0u);
}

TEST(Tracer, RejectsBackwardsSpans) {
  Tracer t;
  EXPECT_THROW(t.record("x", "y", 10, 5), std::invalid_argument);
}

TEST(Tracer, ChromeJsonContainsEventsAndTrackNames) {
  Tracer t;
  t.record("daemon-r1", "KernelRun", 1000, 8000);
  t.record("fe-r0-ac1", "launch \"quoted\"", 500, 9000);
  std::ostringstream os;
  t.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("KernelRun"), std::string::npos);
  EXPECT_NE(json.find("daemon-r1"), std::string::npos);
  // Quotes in names are escaped.
  EXPECT_NE(json.find("launch \\\"quoted\\\""), std::string::npos);
  // ts/dur are in microseconds of simulated time.
  EXPECT_NE(json.find("\"ts\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":7"), std::string::npos);
}

TEST(Tracer, ClearEmpties) {
  Tracer t;
  t.record("a", "b", 0, 1);
  t.clear();
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace dacc::sim
