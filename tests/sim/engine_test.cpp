#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dacc::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0u);
}

TEST(Engine, CallbackRunsAtScheduledTime) {
  Engine engine;
  SimTime observed = kSimTimeNever;
  engine.schedule_at(1500, [&] { observed = engine.now(); });
  engine.run();
  EXPECT_EQ(observed, 1500u);
  EXPECT_EQ(engine.now(), 1500u);
}

TEST(Engine, CallbacksRunInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(300, [&] { order.push_back(3); });
  engine.schedule_at(100, [&] { order.push_back(1); });
  engine.schedule_at(200, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SimultaneousEventsRunInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(42, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine engine;
  engine.schedule_at(100, [&] {
    EXPECT_THROW(engine.schedule_at(50, [] {}), SimError);
  });
  engine.run();
}

TEST(Engine, ProcessWaitForAdvancesClock) {
  Engine engine;
  SimTime after = 0;
  engine.spawn("p", [&](Context& ctx) {
    ctx.wait_for(2500);
    after = ctx.now();
  });
  engine.run();
  EXPECT_EQ(after, 2500u);
}

TEST(Engine, WaitUntilPastIsNoop) {
  Engine engine;
  engine.schedule_at(1000, [] {});
  engine.spawn("p", [&](Context& ctx) {
    ctx.wait_for(5000);
    const SimTime before = ctx.now();
    ctx.wait_until(10);  // already past
    EXPECT_EQ(ctx.now(), before);
  });
  engine.run();
}

TEST(Engine, NestedWaitsAccumulate) {
  Engine engine;
  engine.spawn("p", [&](Context& ctx) {
    for (int i = 0; i < 10; ++i) ctx.wait_for(100);
    EXPECT_EQ(ctx.now(), 1000u);
  });
  engine.run();
}

TEST(Engine, TwoProcessesInterleaveDeterministically) {
  Engine engine;
  std::vector<std::string> trace;
  engine.spawn("a", [&](Context& ctx) {
    for (int i = 0; i < 3; ++i) {
      ctx.wait_for(100);
      trace.push_back("a" + std::to_string(ctx.now()));
    }
  });
  engine.spawn("b", [&](Context& ctx) {
    for (int i = 0; i < 3; ++i) {
      ctx.wait_for(150);
      trace.push_back("b" + std::to_string(ctx.now()));
    }
  });
  engine.run();
  // At t=300 both processes resume; ties resolve by schedule order, and b's
  // resume was scheduled (at t=150) before a's (at t=200).
  EXPECT_EQ(trace, (std::vector<std::string>{"a100", "b150", "a200", "b300",
                                             "a300", "b450"}));
}

TEST(Engine, WakePermitsAreBanked) {
  Engine engine;
  Process* sleeper = nullptr;
  int wakeups = 0;
  sleeper = &engine.spawn("sleeper", [&](Context& ctx) {
    ctx.wait_for(100);  // let the waker run first
    // Two permits were banked while we were sleeping; both suspends return
    // immediately without blocking.
    ctx.suspend();
    ++wakeups;
    ctx.suspend();
    ++wakeups;
  });
  engine.spawn("waker", [&](Context& ctx) {
    ctx.engine().wake(*sleeper);
    ctx.engine().wake(*sleeper);
    (void)ctx;
  });
  engine.run();
  EXPECT_EQ(wakeups, 2);
}

TEST(Engine, SuspendBlocksUntilWake) {
  Engine engine;
  Process* sleeper = nullptr;
  SimTime woke_at = 0;
  sleeper = &engine.spawn("sleeper", [&](Context& ctx) {
    ctx.suspend();
    woke_at = ctx.now();
  });
  engine.spawn("waker", [&](Context& ctx) {
    ctx.wait_for(777);
    ctx.engine().wake(*sleeper);
  });
  engine.run();
  EXPECT_EQ(woke_at, 777u);
}

TEST(Engine, YieldRunsAfterSameTimeEvents) {
  Engine engine;
  std::vector<int> order;
  engine.spawn("p", [&](Context& ctx) {
    ctx.engine().schedule_at(ctx.now(), [&] { order.push_back(1); });
    order.push_back(0);
    ctx.yield();
    order.push_back(2);
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, DeadlockedProcessIsReported) {
  Engine engine;
  engine.spawn("stuck", [](Context& ctx) { ctx.suspend(); });
  EXPECT_THROW(engine.run(), SimError);
}

TEST(Engine, DaemonMayRemainBlocked) {
  Engine engine;
  Process& d = engine.spawn("daemon", [](Context& ctx) {
    while (true) ctx.suspend();
  });
  engine.set_daemon(d);
  engine.spawn("worker", [](Context& ctx) { ctx.wait_for(10); });
  EXPECT_NO_THROW(engine.run());
}

TEST(Engine, ProcessExceptionSurfacesAsSimError) {
  Engine engine;
  engine.spawn("bad", [](Context& ctx) {
    ctx.wait_for(1);
    throw std::runtime_error("boom");
  });
  try {
    engine.run();
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bad"), std::string::npos);
  }
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(100, [&] { ++fired; });
  engine.schedule_at(200, [&] { ++fired; });
  EXPECT_TRUE(engine.run_until(150));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(engine.run_until(1000));
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine engine;
  engine.run_until(5000);
  EXPECT_EQ(engine.now(), 5000u);
}

TEST(Engine, SpawnFromProcessContext) {
  Engine engine;
  SimTime child_ran_at = kSimTimeNever;
  engine.spawn("parent", [&](Context& ctx) {
    ctx.wait_for(100);
    ctx.engine().spawn("child", [&](Context& cctx) {
      child_ran_at = cctx.now();
    });
    ctx.wait_for(100);
  });
  engine.run();
  EXPECT_EQ(child_ran_at, 100u);
}

TEST(Engine, EventsExecutedCounts) {
  Engine engine;
  for (int i = 0; i < 7; ++i) engine.schedule_at(i, [] {});
  engine.run();
  EXPECT_EQ(engine.events_executed(), 7u);
}

TEST(Engine, BlockingOutsideProcessContextThrows) {
  Engine engine;
  Process& p = engine.spawn("p", [](Context& ctx) { ctx.wait_for(1); });
  Context bogus(engine, p);
  engine.schedule_at(0, [&] { EXPECT_THROW(bogus.suspend(), SimError); });
  engine.run();
}

TEST(Engine, ShutdownUnwindsBlockedProcessesCleanly) {
  bool unwound = false;
  {
    Engine engine;
    Process& d = engine.spawn("svc", [&](Context& ctx) {
      struct Guard {
        bool* flag;
        ~Guard() { *flag = true; }
      } guard{&unwound};
      while (true) ctx.suspend();
    });
    engine.set_daemon(d);
    engine.spawn("w", [](Context& ctx) { ctx.wait_for(5); });
    engine.run();
  }  // ~Engine delivers Shutdown to the blocked daemon
  EXPECT_TRUE(unwound);
}

// Determinism: identical scenarios produce identical event traces.
TEST(Engine, DeterministicReplay) {
  auto run_once = [] {
    Engine engine;
    std::vector<std::string> trace;
    Process* svc = nullptr;
    svc = &engine.spawn("svc", [&](Context& ctx) {
      for (int i = 0; i < 5; ++i) {
        ctx.suspend();
        trace.push_back("svc@" + std::to_string(ctx.now()));
        ctx.wait_for(13);
      }
    });
    engine.spawn("gen", [&](Context& ctx) {
      for (int i = 0; i < 5; ++i) {
        ctx.wait_for(31);
        ctx.engine().wake(*svc);
        trace.push_back("gen@" + std::to_string(ctx.now()));
      }
    });
    engine.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dacc::sim
