#include "baseline/rcuda_like.hpp"

#include <gtest/gtest.h>

#include "core/api.hpp"
#include "util/units.hpp"

namespace dacc::baseline {
namespace {

struct Probe {
  double h2d_mib_s = 0.0;
  SimDuration alloc_rtt = 0;
};

Probe probe(rt::ClusterConfig config) {
  config.functional_gpus = false;
  rt::Cluster cluster(std::move(config));
  Probe p;
  rt::JobSpec spec;
  spec.accelerators_per_rank = 1;
  spec.transfer = config.transfer;
  spec.body = [&](rt::JobContext& job) {
    auto& ac = job.session()[0];
    const SimTime a0 = job.ctx().now();
    const gpu::DevPtr ptr = ac.mem_alloc(64_MiB);
    p.alloc_rtt = job.ctx().now() - a0;
    ac.memcpy_h2d(ptr, util::Buffer::phantom(64_MiB));  // warm-up
    const SimTime t0 = job.ctx().now();
    ac.memcpy_h2d(ptr, util::Buffer::phantom(64_MiB));
    p.h2d_mib_s = mib_per_s(64_MiB, job.ctx().now() - t0);
  };
  cluster.submit(spec);
  cluster.run();
  return p;
}

rt::ClusterConfig dacc_config() {
  rt::ClusterConfig c;
  c.compute_nodes = 1;
  c.accelerators = 1;
  return c;
}

TEST(RcudaBaseline, FunctionalCorrectnessIsPreserved) {
  // Same middleware; only slower. Data still round-trips bit-exactly.
  rt::ClusterConfig config = tcp_cluster_config(1, 1);
  rt::Cluster cluster(config);
  rt::JobSpec spec;
  spec.accelerators_per_rank = 1;
  spec.transfer = config.transfer;
  spec.body = [](rt::JobContext& job) {
    auto& ac = job.session()[0];
    const std::int64_t n = 256;
    const gpu::DevPtr p = ac.mem_alloc(static_cast<std::uint64_t>(n) * 8);
    ac.launch("fill_f64", {}, {p, n, 2.5});
    auto out = ac.memcpy_d2h(p, static_cast<std::uint64_t>(n) * 8);
    for (double v : out.as<double>()) EXPECT_DOUBLE_EQ(v, 2.5);
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(RcudaBaseline, MpiTransportDeliversHigherBandwidth) {
  const Probe mpi = probe(dacc_config());
  const Probe tcp = probe(tcp_cluster_config(1, 1));
  // Paper claim: the MPI-based solution clearly outperforms TCP remoting.
  EXPECT_GT(mpi.h2d_mib_s, tcp.h2d_mib_s * 2.0);
  EXPECT_GT(tcp.h2d_mib_s, 500.0);  // but TCP is not absurdly slow either
}

TEST(RcudaBaseline, MpiTransportDeliversLowerLatency) {
  const Probe mpi = probe(dacc_config());
  const Probe tcp = probe(tcp_cluster_config(1, 1));
  EXPECT_LT(mpi.alloc_rtt, tcp.alloc_rtt);
  EXPECT_GT(to_us(tcp.alloc_rtt), 15.0);  // socket-era request RTT
}

TEST(RcudaBaseline, PipelineOnTcpRecoverSomeBandwidth) {
  // Ablation interior point: our pipeline on their transport.
  rt::ClusterConfig hybrid = tcp_cluster_config(1, 1);
  hybrid.transfer = proto::TransferConfig::pipeline(512_KiB);
  hybrid.transfer.gpudirect = false;
  const Probe naive_tcp = probe(tcp_cluster_config(1, 1));
  const Probe pipe_tcp = probe(hybrid);
  EXPECT_GT(pipe_tcp.h2d_mib_s, naive_tcp.h2d_mib_s);
}

}  // namespace
}  // namespace dacc::baseline
