#include "mdsim/srd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace dacc::mdsim {
namespace {

std::vector<double> random_particles(std::uint64_t n, double box,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> data(n * 6);
  for (std::uint64_t i = 0; i < n; ++i) {
    data[i * 6 + 0] = rng.uniform(0, box);
    data[i * 6 + 1] = rng.uniform(0, box);
    data[i * 6 + 2] = rng.uniform(0, box);
    data[i * 6 + 3] = rng.normal();
    data[i * 6 + 4] = rng.normal();
    data[i * 6 + 5] = rng.normal();
  }
  return data;
}

SrdGrid grid_for(int side, double shift = 0.3) {
  SrdGrid g;
  g.cell = 1.0;
  g.nc[0] = g.nc[1] = g.nc[2] = side;
  g.shift[0] = shift;
  g.shift[1] = shift * 0.5;
  g.shift[2] = shift * 0.25;
  return g;
}

struct Totals {
  double ke = 0.0;
  double mom[3] = {0, 0, 0};
};

Totals totals(const std::vector<double>& data) {
  Totals t;
  for (std::uint64_t i = 0; i * 6 < data.size(); ++i) {
    const double* v = data.data() + i * 6 + 3;
    t.ke += 0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
    for (int d = 0; d < 3; ++d) t.mom[d] += v[d];
  }
  return t;
}

TEST(Srd, ConservesKineticEnergyAndMomentum) {
  auto data = random_particles(5000, 8.0, 1);
  const Totals before = totals(data);
  const double a = 130.0 * M_PI / 180.0;
  srd_collide(data, 5000, grid_for(8), std::cos(a), std::sin(a), 99);
  const Totals after = totals(data);
  EXPECT_NEAR(after.ke, before.ke, 1e-9 * before.ke);
  for (int d = 0; d < 3; ++d) {
    EXPECT_NEAR(after.mom[d], before.mom[d], 1e-9 * 5000);
  }
}

TEST(Srd, ActuallyChangesVelocities) {
  auto data = random_particles(1000, 5.0, 2);
  const auto before = data;
  const double a = 130.0 * M_PI / 180.0;
  srd_collide(data, 1000, grid_for(5), std::cos(a), std::sin(a), 7);
  double delta = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    delta = std::max(delta, std::fabs(data[i] - before[i]));
  }
  EXPECT_GT(delta, 1e-3);
  // Positions must be untouched.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(data[i * 6 + d], before[i * 6 + d]);
    }
  }
}

TEST(Srd, SingleParticleCellIsFixedPoint) {
  // A particle alone in its cell has v == mean: the rotation acts on zero.
  std::vector<double> data{0.5, 0.5, 0.5, 1.0, -2.0, 3.0};
  const double a = 130.0 * M_PI / 180.0;
  srd_collide(data, 1, grid_for(4, 0.0), std::cos(a), std::sin(a), 1);
  EXPECT_DOUBLE_EQ(data[3], 1.0);
  EXPECT_DOUBLE_EQ(data[4], -2.0);
  EXPECT_DOUBLE_EQ(data[5], 3.0);
}

TEST(Srd, DeterministicForSameSeed) {
  auto a = random_particles(500, 4.0, 3);
  auto b = a;
  const double an = 130.0 * M_PI / 180.0;
  srd_collide(a, 500, grid_for(4), std::cos(an), std::sin(an), 5);
  srd_collide(b, 500, grid_for(4), std::cos(an), std::sin(an), 5);
  EXPECT_EQ(a, b);
}

TEST(Srd, DifferentSeedsRotateDifferently) {
  auto a = random_particles(500, 4.0, 3);
  auto b = a;
  const double an = 130.0 * M_PI / 180.0;
  srd_collide(a, 500, grid_for(4), std::cos(an), std::sin(an), 5);
  srd_collide(b, 500, grid_for(4), std::cos(an), std::sin(an), 6);
  EXPECT_NE(a, b);
}

TEST(Srd, CellIndexIsPeriodic) {
  const SrdGrid g = grid_for(4, 0.5);
  // x below the shift wraps to the last cell.
  const auto low = srd_cell_index(0.1, 1.0, 1.0, g);
  const auto high = srd_cell_index(3.9, 1.0, 1.0, g);
  EXPECT_EQ(low, high);  // both land in the cell spanning the boundary
}

TEST(Srd, CellCornerWrapsIntoBox) {
  const SrdGrid g = grid_for(4, 0.5);
  const double corner_low = srd_cell_corner_x(0.1, g);
  EXPECT_NEAR(corner_low, 3.5, 1e-12);  // the wrapped boundary cell
  const double corner_mid = srd_cell_corner_x(1.7, g);
  EXPECT_NEAR(corner_mid, 1.5, 1e-12);
}

TEST(Srd, ZeroAngleIsIdentity) {
  auto data = random_particles(300, 4.0, 9);
  const auto before = data;
  srd_collide(data, 300, grid_for(4), 1.0, 0.0, 5);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i], before[i], 1e-12);
  }
}

}  // namespace
}  // namespace dacc::mdsim
