// Integration tests for the MP2C-like application through the full stack:
// conservation laws across domain decomposition + remote GPU offload, and
// the timing shape behind Figure 11.
#include "mdsim/mp2c.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace dacc::mdsim {
namespace {

std::shared_ptr<gpu::KernelRegistry> mdsim_registry() {
  auto reg = gpu::KernelRegistry::with_builtins();
  register_mdsim_kernels(*reg);
  return reg;
}

rt::ClusterConfig md_cluster(int cns, int acs, bool functional,
                             bool local_gpus = false) {
  rt::ClusterConfig c;
  c.compute_nodes = cns;
  c.accelerators = acs;
  c.functional_gpus = functional;
  c.local_gpus = local_gpus;
  c.registry = mdsim_registry();
  return c;
}

SrdParams short_run() {
  SrdParams p;
  p.steps = 20;
  p.srd_every = 5;
  return p;
}

struct RunOutput {
  std::vector<Mp2cResult> per_rank;
  SimDuration wall = 0;
};

RunOutput run(rt::ClusterConfig config, int ranks, std::uint32_t acs,
              std::uint64_t particles, const SrdParams& srd,
              bool use_local_gpu = false, std::uint64_t seed = 42) {
  rt::Cluster cluster(std::move(config));
  RunOutput out;
  out.per_rank.resize(static_cast<std::size_t>(ranks));
  rt::JobSpec spec;
  spec.ranks = ranks;
  spec.accelerators_per_rank = acs;
  spec.body = [&](rt::JobContext& job) {
    std::unique_ptr<core::DeviceLink> link;
    if (use_local_gpu) {
      link = std::make_unique<core::LocalDeviceLink>(job.local_gpu());
    } else if (acs > 0) {
      link = std::make_unique<core::RemoteDeviceLink>(job.session()[0],
                                                      job.ctx());
    }
    out.per_rank[static_cast<std::size_t>(job.rank())] =
        run_mp2c(job, link.get(), particles, srd, CostParams{}, seed);
  };
  cluster.submit(spec);
  cluster.run();
  out.wall = cluster.engine().now();
  return out;
}

TEST(Mp2c, ConservesParticlesAcrossMigration) {
  const std::uint64_t n = 4000;
  const auto out = run(md_cluster(2, 2, true), 2, 1, n, short_run());
  const std::uint64_t total =
      out.per_rank[0].local_particles + out.per_rank[1].local_particles;
  EXPECT_EQ(total, n);
  // Some migration must actually have happened over 20 steps.
  EXPECT_GT(out.per_rank[0].migrated_out + out.per_rank[1].migrated_out, 0u);
}

TEST(Mp2c, ConservesEnergyAndMomentumThroughRemoteGpu) {
  const std::uint64_t n = 4000;
  // Reference: no GPU at all (pure CPU collisions).
  const auto cpu = run(md_cluster(2, 0, true), 2, 0, n, short_run());
  // Same physics through the remote accelerators.
  const auto gpu_run = run(md_cluster(2, 2, true), 2, 1, n, short_run());
  // Energy/momentum are conserved in both; the allreduced totals agree
  // across ranks by construction, so check rank 0.
  const double ke0 = cpu.per_rank[0].kinetic_energy;
  const double ke1 = gpu_run.per_rank[0].kinetic_energy;
  EXPECT_GT(ke0, 0.0);
  EXPECT_NEAR(ke1, ke0, 1e-6 * ke0);  // identical seeds, identical physics
  for (int d = 0; d < 3; ++d) {
    EXPECT_NEAR(gpu_run.per_rank[0].momentum[static_cast<std::size_t>(d)],
                cpu.per_rank[0].momentum[static_cast<std::size_t>(d)],
                1e-7 * n);
  }
}

TEST(Mp2c, EnergyMatchesInitialThermalEnergy) {
  // KE of n particles with unit-variance Maxwell velocities ~ 1.5 n; SRD
  // conserves it exactly through all 20 steps.
  const std::uint64_t n = 6000;
  const auto out = run(md_cluster(2, 2, true), 2, 1, n, short_run());
  EXPECT_NEAR(out.per_rank[0].kinetic_energy, 1.5 * static_cast<double>(n),
              0.1 * static_cast<double>(n));
}

TEST(Mp2c, SrdStepsHappenOnSchedule) {
  const auto out = run(md_cluster(1, 1, true), 1, 1, 2000, short_run());
  EXPECT_EQ(out.per_rank[0].srd_steps, 4u);  // 20 steps, every 5th
}

TEST(Mp2c, RemoteGpuOnlySlightlySlowerThanLocal) {
  // The Figure 11 claim: "prolongs execution by at most 4%".
  SrdParams srd = short_run();
  const std::uint64_t n = 200'000;  // phantom mode: size is free
  const auto local = run(md_cluster(2, 0, false, /*local=*/true), 2, 0, n,
                         srd, /*use_local_gpu=*/true);
  const auto remote = run(md_cluster(2, 2, false), 2, 1, n, srd);
  EXPECT_GT(remote.wall, local.wall);
  EXPECT_LT(static_cast<double>(remote.wall),
            static_cast<double>(local.wall) * 1.06);
}

TEST(Mp2c, GpuOffloadBeatsCpuCollisions) {
  const std::uint64_t n = 200'000;
  const auto cpu = run(md_cluster(2, 0, false), 2, 0, n, short_run());
  const auto gpu_run = run(md_cluster(2, 2, false), 2, 1, n, short_run());
  EXPECT_LT(gpu_run.wall, cpu.wall);
}

TEST(Mp2c, PhantomAndFunctionalTimingsAgreeApproximately) {
  // Phantom migration volumes are estimates, so allow a small tolerance.
  SrdParams srd = short_run();
  const std::uint64_t n = 20'000;
  const auto functional = run(md_cluster(2, 2, true), 2, 1, n, srd);
  const auto phantom = run(md_cluster(2, 2, false), 2, 1, n, srd);
  const double ratio = static_cast<double>(functional.wall) /
                       static_cast<double>(phantom.wall);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(Mp2c, DeterministicReplay) {
  const auto a = run(md_cluster(2, 2, true), 2, 1, 3000, short_run());
  const auto b = run(md_cluster(2, 2, true), 2, 1, 3000, short_run());
  EXPECT_EQ(a.wall, b.wall);
  EXPECT_EQ(a.per_rank[0].kinetic_energy, b.per_rank[0].kinetic_energy);
  EXPECT_EQ(a.per_rank[0].local_particles, b.per_rank[0].local_particles);
}

TEST(Mp2c, SingleRankNeedsNoMigration) {
  const auto out = run(md_cluster(1, 1, true), 1, 1, 2000, short_run());
  EXPECT_EQ(out.per_rank[0].migrated_out, 0u);
  EXPECT_EQ(out.per_rank[0].local_particles, 2000u);
}

TEST(Mp2c, TinySystemsGrowTheGridToFitTheRanks) {
  // 8 particles would give a 1-cell box; the geometry expands so every rank
  // still owns at least one cell-wide slab, and physics stays conserved.
  SrdParams srd = short_run();
  const auto out = run(md_cluster(4, 0, true), 4, 0, 8, srd);
  std::uint64_t total = 0;
  for (const auto& r : out.per_rank) total += r.local_particles;
  EXPECT_EQ(total, 8u);
}

}  // namespace
}  // namespace dacc::mdsim
