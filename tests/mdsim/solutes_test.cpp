// MD solutes: Lennard-Jones dynamics, domain decomposition, and the
// mass-weighted SRD coupling.
#include "mdsim/solutes.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mdsim/mp2c.hpp"
#include "mdsim/srd.hpp"
#include "util/units.hpp"

namespace dacc::mdsim {
namespace {

// --- coupled collision invariants -------------------------------------------

TEST(CoupledSrd, ConservesTotalMomentumAndEnergy) {
  util::Rng rng(4);
  const std::uint64_t nf = 3000;
  const std::uint64_t ns = 120;
  const double ms = 10.0;
  std::vector<double> fluid(nf * 6);
  std::vector<double> sol(ns * 6);
  auto init = [&](std::vector<double>& v, std::uint64_t n, double mass) {
    for (std::uint64_t i = 0; i < n; ++i) {
      double* p = v.data() + i * 6;
      for (int d = 0; d < 3; ++d) p[d] = rng.uniform(0, 8);
      for (int d = 3; d < 6; ++d) p[d] = rng.normal() / std::sqrt(mass);
    }
  };
  init(fluid, nf, 1.0);
  init(sol, ns, ms);

  auto totals = [&] {
    double mom[4] = {0, 0, 0, 0};  // px, py, pz, ke
    for (std::uint64_t i = 0; i < nf; ++i) {
      const double* v = fluid.data() + i * 6 + 3;
      for (int d = 0; d < 3; ++d) mom[d] += v[d];
      mom[3] += 0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
    }
    for (std::uint64_t i = 0; i < ns; ++i) {
      const double* v = sol.data() + i * 6 + 3;
      for (int d = 0; d < 3; ++d) mom[d] += ms * v[d];
      mom[3] += 0.5 * ms * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
    }
    return std::array<double, 4>{mom[0], mom[1], mom[2], mom[3]};
  };

  SrdGrid grid;
  grid.cell = 1.0;
  grid.nc[0] = grid.nc[1] = grid.nc[2] = 8;
  grid.shift[0] = 0.4;
  const auto before = totals();
  const double a = 130.0 * M_PI / 180.0;
  srd_collide_coupled(fluid, nf, sol, ns, ms, grid, std::cos(a), std::sin(a),
                      17);
  const auto after = totals();
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(after[d], before[d], 1e-8);
  EXPECT_NEAR(after[3], before[3], 1e-8 * before[3]);
}

TEST(CoupledSrd, MomentumActuallyFlowsBetweenSpecies) {
  // Fluid at rest + moving solutes: after a collision the fluid moves.
  const std::uint64_t nf = 500;
  const std::uint64_t ns = 50;
  util::Rng rng(5);
  std::vector<double> fluid(nf * 6, 0.0);
  std::vector<double> sol(ns * 6, 0.0);
  for (std::uint64_t i = 0; i < nf; ++i) {
    for (int d = 0; d < 3; ++d) {
      fluid[i * 6 + d] = rng.uniform(0, 4);
    }
  }
  for (std::uint64_t i = 0; i < ns; ++i) {
    for (int d = 0; d < 3; ++d) sol[i * 6 + d] = rng.uniform(0, 4);
    sol[i * 6 + 3] = 1.0;  // solutes drift in +x
  }
  SrdGrid grid;
  grid.cell = 1.0;
  grid.nc[0] = grid.nc[1] = grid.nc[2] = 4;
  const double a = 130.0 * M_PI / 180.0;
  srd_collide_coupled(fluid, nf, sol, ns, 10.0, grid, std::cos(a),
                      std::sin(a), 3);
  double fluid_px = 0.0;
  for (std::uint64_t i = 0; i < nf; ++i) fluid_px += fluid[i * 6 + 3];
  EXPECT_GT(std::abs(fluid_px), 1.0);  // solvent picked up solute momentum
}

// --- LJ dynamics through the full mp2c run ----------------------------------

std::shared_ptr<gpu::KernelRegistry> registry() {
  auto reg = gpu::KernelRegistry::with_builtins();
  register_mdsim_kernels(*reg);
  return reg;
}

struct CoupledRun {
  std::vector<Mp2cResult> per_rank;
};

CoupledRun run_coupled(int ranks, std::uint64_t fluid_n,
                       std::uint64_t solute_n, int steps,
                       std::uint32_t acs_per_rank) {
  rt::ClusterConfig c;
  c.compute_nodes = ranks;
  c.accelerators = ranks * static_cast<int>(acs_per_rank);
  c.registry = registry();
  rt::Cluster cluster(c);
  CoupledRun out;
  out.per_rank.resize(static_cast<std::size_t>(ranks));
  rt::JobSpec spec;
  spec.ranks = ranks;
  spec.accelerators_per_rank = acs_per_rank;
  spec.body = [&](rt::JobContext& job) {
    SrdParams srd;
    srd.steps = steps;
    srd.solutes.count = solute_n;
    srd.dt = 0.002;  // small dt keeps the Verlet energy drift tiny
    std::unique_ptr<core::DeviceLink> link;
    if (acs_per_rank > 0) {
      link = std::make_unique<core::RemoteDeviceLink>(job.session()[0],
                                                      job.ctx());
    }
    out.per_rank[static_cast<std::size_t>(job.rank())] =
        run_mp2c(job, link.get(), fluid_n, srd);
  };
  cluster.submit(spec);
  cluster.run();
  return out;
}

TEST(Solutes, CountConservedAcrossMigration) {
  const auto out = run_coupled(2, 3000, 100, 15, 1);
  const std::uint64_t total =
      out.per_rank[0].local_solutes + out.per_rank[1].local_solutes;
  EXPECT_EQ(total, 100u);
}

TEST(Solutes, TotalMomentumStaysZero) {
  const auto out = run_coupled(2, 3000, 100, 15, 1);
  // Fluid starts at zero net momentum, solutes add a small random net; the
  // combined total must be conserved (it is whatever it started as, which
  // is O(sqrt(n_s * m)) — just check it does not grow).
  for (int d = 0; d < 3; ++d) {
    EXPECT_LT(std::abs(out.per_rank[0].momentum[static_cast<std::size_t>(d)]),
              200.0);
  }
}

TEST(Solutes, CoupledEnergyApproximatelyConserved) {
  // SRD conserves KE exactly; Verlet conserves KE_s + PE to O(dt^2). The
  // total (fluid KE + solute KE + LJ PE) must drift by well under 1%.
  const auto a = run_coupled(1, 4000, 150, 2, 1);
  const auto b = run_coupled(1, 4000, 150, 40, 1);
  const double e_a = a.per_rank[0].kinetic_energy +
                     a.per_rank[0].solute_potential;
  const double e_b = b.per_rank[0].kinetic_energy +
                     b.per_rank[0].solute_potential;
  EXPECT_NEAR(e_b, e_a, 0.01 * std::abs(e_a));
}

TEST(Solutes, GpuAndCpuCollisionsAgree) {
  const auto gpu_run = run_coupled(2, 2000, 80, 10, 1);
  const auto cpu_run = run_coupled(2, 2000, 80, 10, 0);
  EXPECT_NEAR(gpu_run.per_rank[0].kinetic_energy,
              cpu_run.per_rank[0].kinetic_energy,
              1e-6 * cpu_run.per_rank[0].kinetic_energy);
  EXPECT_NEAR(gpu_run.per_rank[0].solute_potential,
              cpu_run.per_rank[0].solute_potential,
              1e-6 * std::abs(cpu_run.per_rank[0].solute_potential) + 1e-6);
}

TEST(Solutes, SolutesExchangeEnergyWithFluid) {
  // With coupling, solute kinetic energy moves toward equipartition
  // (1.5 kT per particle, kT = 1): it must change from its initial value.
  const auto short_run = run_coupled(1, 4000, 150, 2, 1);
  const auto long_run = run_coupled(1, 4000, 150, 100, 1);
  EXPECT_NE(short_run.per_rank[0].solute_kinetic,
            long_run.per_rank[0].solute_kinetic);
  EXPECT_GT(long_run.per_rank[0].solute_kinetic, 0.0);
}

TEST(Solutes, RejectsCutoffWiderThanSlab) {
  SoluteParams p;
  p.count = 10;
  p.rcut = 10.0;
  EXPECT_THROW(SoluteSystem(p, 0, 2, 0.0, 4.0, 8.0, 8.0, 8.0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace dacc::mdsim
