// LU with partial pivoting: host reference and hybrid multi-GPU runs.
#include <gtest/gtest.h>

#include "la/factorizations.hpp"
#include "la/lapack.hpp"
#include "rt/cluster.hpp"
#include "util/rng.hpp"

namespace dacc::la {
namespace {

HostMatrix random_matrix(int m, int n, std::uint64_t seed) {
  util::Rng rng(seed);
  HostMatrix a(m, n);
  a.fill_random(rng);
  return a;
}

TEST(Lu, Dgetf2KnownMatrix) {
  // A = [0 1; 2 3] needs a pivot swap.
  HostMatrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 3.0;
  std::vector<int> ipiv(2);
  EXPECT_EQ(dgetf2(2, 2, a.data(), 2, ipiv.data(), 0), 0);
  EXPECT_EQ(ipiv[0], 1);  // row 0 swapped with row 1
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 0.0);   // L(1,0)
  EXPECT_DOUBLE_EQ(a.at(1, 1), 1.0);   // U(1,1)
}

TEST(Lu, Dgetf2DetectsSingular) {
  HostMatrix a(2, 2);  // all zeros
  std::vector<int> ipiv(2);
  EXPECT_NE(dgetf2(2, 2, a.data(), 2, ipiv.data(), 0), 0);
}

class GetrfHostP : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(GetrfHostP, ResidualIsTiny) {
  const auto [m, n, nb] = GetParam();
  HostMatrix a = random_matrix(m, n, 31 + static_cast<std::uint64_t>(m * n));
  HostMatrix original = a;
  std::vector<int> ipiv;
  ASSERT_EQ(dgetrf_host(a, nb, ipiv), 0);
  EXPECT_LT(lu_residual(original, a, ipiv), 1e-10 * std::max(m, n));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GetrfHostP,
    ::testing::Values(std::tuple{1, 1, 4}, std::tuple{8, 8, 4},
                      std::tuple{16, 16, 16}, std::tuple{33, 17, 8},
                      std::tuple{17, 33, 8}, std::tuple{64, 64, 16},
                      std::tuple{96, 64, 32}));

TEST(Lu, BlockedMatchesUnblocked) {
  const int n = 24;
  HostMatrix a = random_matrix(n, n, 5);
  HostMatrix b = a;
  std::vector<int> ipiv_blocked;
  ASSERT_EQ(dgetrf_host(a, 7, ipiv_blocked), 0);
  std::vector<int> ipiv_unblocked(static_cast<std::size_t>(n));
  ASSERT_EQ(dgetf2(n, n, b.data(), n, ipiv_unblocked.data(), 0), 0);
  EXPECT_LT(HostMatrix::max_abs_diff(a, b), 1e-11);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(ipiv_blocked[static_cast<std::size_t>(i)],
              ipiv_unblocked[static_cast<std::size_t>(i)]);
  }
}

TEST(Lu, PivotingActuallyPivots) {
  // Without pivoting this matrix blows up; with it the residual stays tiny.
  const int n = 32;
  HostMatrix a = random_matrix(n, n, 9);
  for (int i = 0; i < n / 2; ++i) a.at(i, i) = 1e-14;  // tiny diagonal
  HostMatrix original = a;
  std::vector<int> ipiv;
  ASSERT_EQ(dgetrf_host(a, 8, ipiv), 0);
  EXPECT_LT(lu_residual(original, a, ipiv), 1e-10 * n);
  int swaps = 0;
  for (std::size_t i = 0; i < ipiv.size(); ++i) {
    if (ipiv[i] != static_cast<int>(i)) ++swaps;
  }
  EXPECT_GT(swaps, 0);
}

// --- hybrid runs through the full middleware --------------------------------

class LuRemoteP : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(LuRemoteP, MatchesHostReference) {
  const auto [n, nb, g] = GetParam();
  rt::ClusterConfig config;
  config.compute_nodes = 1;
  config.accelerators = g;
  config.registry = la_registry();
  rt::Cluster cluster(config);
  rt::JobSpec spec;
  spec.accelerators_per_rank = static_cast<std::uint32_t>(g);
  spec.body = [&, n = n, nb = nb](rt::JobContext& job) {
    std::vector<std::unique_ptr<RemoteGpu>> links;
    std::vector<Gpu*> gpus;
    for (std::size_t i = 0; i < job.session().size(); ++i) {
      links.push_back(
          std::make_unique<RemoteGpu>(job.session()[i], job.ctx()));
      gpus.push_back(links.back().get());
    }
    HostMatrix a = random_matrix(n, n, 400 + static_cast<std::uint64_t>(n));
    HostMatrix original = a;
    std::vector<int> ipiv;
    const FactorResult r =
        dgetrf_hybrid(job.ctx(), gpus, a, nb, LaParams{}, &ipiv);
    ASSERT_EQ(r.info, 0);
    EXPECT_GT(r.factor_time, 0u);
    EXPECT_LT(lu_residual(original, a, ipiv), 1e-10 * n);

    // Cross-check against the host reference factors directly.
    HostMatrix reference = original;
    std::vector<int> ref_ipiv;
    ASSERT_EQ(dgetrf_host(reference, nb, ref_ipiv), 0);
    EXPECT_LT(HostMatrix::max_abs_diff(a, reference), 1e-10);
  };
  cluster.submit(spec);
  cluster.run();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LuRemoteP,
    ::testing::Values(std::tuple{16, 16, 1}, std::tuple{48, 16, 1},
                      std::tuple{48, 16, 2}, std::tuple{48, 16, 3},
                      std::tuple{64, 16, 2}, std::tuple{72, 16, 3},
                      std::tuple{50, 16, 2}));

TEST(LuShapes, MultiGpuScalesAtLargeN) {
  auto gflops_with = [](int g) {
    rt::ClusterConfig config;
    config.compute_nodes = 1;
    config.accelerators = g;
    config.functional_gpus = false;
    config.registry = la_registry();
    rt::Cluster cluster(config);
    double out = 0.0;
    rt::JobSpec spec;
    spec.accelerators_per_rank = static_cast<std::uint32_t>(g);
    spec.body = [&](rt::JobContext& job) {
      std::vector<std::unique_ptr<RemoteGpu>> links;
      std::vector<Gpu*> gpus;
      for (std::size_t i = 0; i < job.session().size(); ++i) {
        links.push_back(
            std::make_unique<RemoteGpu>(job.session()[i], job.ctx()));
        gpus.push_back(links.back().get());
      }
      HostMatrix a(4096, 4096, false);
      out = dgetrf_hybrid(job.ctx(), gpus, a, 128).gflops;
    };
    cluster.submit(spec);
    cluster.run();
    return out;
  };
  const double g1 = gflops_with(1);
  const double g3 = gflops_with(3);
  EXPECT_GT(g3, g1 * 1.5);
}

}  // namespace
}  // namespace dacc::la
