#include "la/lapack.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace dacc::la {
namespace {

HostMatrix random_matrix(int m, int n, std::uint64_t seed) {
  util::Rng rng(seed);
  HostMatrix a(m, n);
  a.fill_random(rng);
  return a;
}

HostMatrix random_spd(int n, std::uint64_t seed) {
  HostMatrix a = random_matrix(n, n, seed);
  a.make_spd();
  return a;
}

TEST(Lapack, Dpotf2FactorsKnownMatrix) {
  // A = L L^T with L = [2 0; 1 3].
  HostMatrix a(2, 2);
  a.at(0, 0) = 4.0;
  a.at(1, 0) = 2.0;
  a.at(0, 1) = 2.0;
  a.at(1, 1) = 10.0;
  EXPECT_EQ(dpotf2(2, a.data(), 2), 0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 3.0);
}

TEST(Lapack, Dpotf2DetectsIndefinite) {
  HostMatrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(1, 0) = 5.0;
  a.at(0, 1) = 5.0;
  a.at(1, 1) = 1.0;  // not SPD
  EXPECT_EQ(dpotf2(2, a.data(), 2), 2);
}

class PotrfHostP : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PotrfHostP, ResidualIsTiny) {
  const auto [n, nb] = GetParam();
  HostMatrix a = random_spd(n, 42 + static_cast<std::uint64_t>(n));
  HostMatrix original = a;
  ASSERT_EQ(dpotrf_host(a, nb), 0);
  EXPECT_LT(cholesky_residual(original, a), 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PotrfHostP,
                         ::testing::Values(std::pair{1, 4}, std::pair{7, 4},
                                           std::pair{16, 4}, std::pair{33, 8},
                                           std::pair{64, 16},
                                           std::pair{96, 32}));

TEST(Lapack, BlockedPotrfMatchesUnblocked) {
  HostMatrix a = random_spd(24, 9);
  HostMatrix b = a;
  ASSERT_EQ(dpotrf_host(a, 5), 0);
  ASSERT_EQ(dpotf2(24, b.data(), 24), 0);
  // Compare lower triangles.
  for (int j = 0; j < 24; ++j) {
    for (int i = j; i < 24; ++i) {
      EXPECT_NEAR(a.at(i, j), b.at(i, j), 1e-11);
    }
  }
}

class GeqrfHostP
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GeqrfHostP, FactorizationIsExactAndOrthogonal) {
  const auto [m, n, nb] = GetParam();
  HostMatrix a = random_matrix(m, n, 7 + static_cast<std::uint64_t>(m + n));
  HostMatrix original = a;
  std::vector<double> tau;
  dgeqrf_host(a, nb, tau);
  EXPECT_LT(qr_residual(original, a, tau), 1e-11 * std::max(m, n));
  EXPECT_LT(qr_orthogonality(a, tau), 1e-12 * m);
  // R's diagonal should be nonzero for a random matrix.
  for (int i = 0; i < std::min(m, n); ++i) {
    EXPECT_GT(std::fabs(a.at(i, i)), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeqrfHostP,
    ::testing::Values(std::tuple{1, 1, 4}, std::tuple{8, 8, 4},
                      std::tuple{16, 16, 16},  // single panel
                      std::tuple{33, 17, 8},   // tall, ragged
                      std::tuple{17, 33, 8},   // wide
                      std::tuple{64, 64, 16}, std::tuple{96, 64, 32}));

TEST(Lapack, GeqrfBlockedMatchesUnblocked) {
  const int m = 20;
  const int n = 12;
  HostMatrix a = random_matrix(m, n, 123);
  HostMatrix b = a;
  std::vector<double> tau_blocked;
  dgeqrf_host(a, 5, tau_blocked);
  std::vector<double> tau_unblocked(static_cast<std::size_t>(n));
  dgeqr2(m, n, b.data(), m, tau_unblocked.data());
  EXPECT_LT(HostMatrix::max_abs_diff(a, b), 1e-11);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(tau_blocked[static_cast<std::size_t>(i)],
                tau_unblocked[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Lapack, DlarftDlarfbConsistentWithRankOneApplications) {
  // Applying the block reflector must equal applying H_i one by one.
  const int m = 12;
  const int k = 4;
  HostMatrix panel = random_matrix(m, k, 55);
  std::vector<double> tau(static_cast<std::size_t>(k));
  dgeqr2(m, k, panel.data(), m, tau.data());

  HostMatrix c = random_matrix(m, 6, 66);
  HostMatrix c_blocked = c;

  // One by one: C := H_k-1 ... H_0 C (that's Q^T C).
  for (int i = 0; i < k; ++i) {
    std::vector<double> v(static_cast<std::size_t>(m), 0.0);
    v[static_cast<std::size_t>(i)] = 1.0;
    for (int r = i + 1; r < m; ++r) {
      v[static_cast<std::size_t>(r)] = panel.at(r, i);
    }
    std::vector<double> w(6, 0.0);
    dgemv(Trans::kYes, m, 6, 1.0, c.data(), m, v.data(), 0.0, w.data());
    dger(m, 6, -tau[static_cast<std::size_t>(i)], v.data(), w.data(),
         c.data(), m);
  }

  // Blocked:
  std::vector<double> vmat(static_cast<std::size_t>(m) * k);
  materialize_v(m, k, panel.data(), m, vmat.data());
  std::vector<double> t(static_cast<std::size_t>(k) * k);
  dlarft(m, k, panel.data(), m, tau.data(), t.data(), k);
  dlarfb(Trans::kYes, m, 6, k, vmat.data(), m, t.data(), k,
         c_blocked.data(), m);

  EXPECT_LT(HostMatrix::max_abs_diff(c, c_blocked), 1e-12);
}

TEST(Lapack, QrOfZeroColumnHasZeroTau) {
  HostMatrix a(6, 2);
  for (int i = 0; i < 6; ++i) a.at(i, 1) = static_cast<double>(i);
  // Column 0 is all zeros.
  std::vector<double> tau(2);
  dgeqr2(6, 2, a.data(), 6, tau.data());
  EXPECT_DOUBLE_EQ(tau[0], 0.0);
}

}  // namespace
}  // namespace dacc::la
