#include "la/dist.hpp"

#include <gtest/gtest.h>

namespace dacc::la {
namespace {

TEST(BlockCyclic, SingleGpuOwnsEverything) {
  const BlockCyclic d(100, 16, 1);
  EXPECT_EQ(d.nblocks(), 7);
  for (int b = 0; b < d.nblocks(); ++b) {
    EXPECT_EQ(d.owner(b), 0);
    EXPECT_EQ(d.local_col(b), b * 16);
  }
  EXPECT_EQ(d.local_cols(0), 100);
  EXPECT_EQ(d.block_width(6), 4);  // 100 - 96
}

TEST(BlockCyclic, RoundRobinOwnership) {
  const BlockCyclic d(128, 16, 3);
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(1), 1);
  EXPECT_EQ(d.owner(2), 2);
  EXPECT_EQ(d.owner(3), 0);
  EXPECT_EQ(d.local_block(3), 1);
  EXPECT_EQ(d.local_col(3), 16);
}

TEST(BlockCyclic, LocalColsSumToN) {
  for (int g = 1; g <= 4; ++g) {
    const BlockCyclic d(130, 16, g);
    int total = 0;
    for (int me = 0; me < g; ++me) total += d.local_cols(me);
    EXPECT_EQ(total, 130) << "g=" << g;
  }
}

TEST(BlockCyclic, TrailingColsCountsOnlyLaterBlocks) {
  const BlockCyclic d(96, 16, 2);  // 6 blocks: 0,2,4 -> gpu0; 1,3,5 -> gpu1
  EXPECT_EQ(d.trailing_cols(0, 0), 32);  // blocks 2, 4
  EXPECT_EQ(d.trailing_cols(1, 0), 48);  // blocks 1, 3, 5
  EXPECT_EQ(d.trailing_cols(0, 4), 0);
  EXPECT_EQ(d.trailing_cols(1, 4), 16);  // block 5
  EXPECT_EQ(d.next_owned_after(0, 0), 2);
  EXPECT_EQ(d.next_owned_after(1, 3), 5);
  EXPECT_EQ(d.next_owned_after(0, 4), 6);  // none
}

TEST(BlockCyclic, PartialLastBlockWidths) {
  const BlockCyclic d(50, 16, 2);  // blocks 0,2 -> gpu0; 1,3 (width 2) -> gpu1
  EXPECT_EQ(d.block_width(3), 2);
  EXPECT_EQ(d.local_cols(0), 32);
  EXPECT_EQ(d.local_cols(1), 18);
}

TEST(BlockCyclic, InvalidParamsThrow) {
  EXPECT_THROW(BlockCyclic(-1, 16, 1), std::invalid_argument);
  EXPECT_THROW(BlockCyclic(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(BlockCyclic(10, 16, 0), std::invalid_argument);
}

}  // namespace
}  // namespace dacc::la
