#include "la/blas.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "la/matrix.hpp"
#include "util/rng.hpp"

namespace dacc::la {
namespace {

TEST(Blas, GemmNoTransSmallKnown) {
  // A = [1 3; 2 4] (col-major), B = [5 7; 6 8], C = A*B.
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b{5, 6, 7, 8};
  std::vector<double> c(4, 0.0);
  dgemm(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0, a.data(), 2, b.data(), 2, 0.0,
        c.data(), 2);
  EXPECT_DOUBLE_EQ(c[0], 23.0);  // 1*5+3*6
  EXPECT_DOUBLE_EQ(c[1], 34.0);  // 2*5+4*6
  EXPECT_DOUBLE_EQ(c[2], 31.0);  // 1*7+3*8
  EXPECT_DOUBLE_EQ(c[3], 46.0);  // 2*7+4*8
}

TEST(Blas, GemmTransposeAgreesWithManualTranspose) {
  util::Rng rng(3);
  const int m = 5;
  const int n = 4;
  const int k = 3;
  std::vector<double> a(static_cast<std::size_t>(k) * m);   // A^T is k x m
  std::vector<double> b(static_cast<std::size_t>(n) * k);   // B^T is n x k
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  // Reference: materialize op(A) (m x k) and op(B) (k x n).
  std::vector<double> at(static_cast<std::size_t>(m) * k);
  std::vector<double> bt(static_cast<std::size_t>(k) * n);
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      at[static_cast<std::size_t>(p) * m + i] =
          a[static_cast<std::size_t>(i) * k + p];
    }
  }
  for (int p = 0; p < k; ++p) {
    for (int j = 0; j < n; ++j) {
      bt[static_cast<std::size_t>(j) * k + p] =
          b[static_cast<std::size_t>(p) * n + j];
    }
  }
  std::vector<double> c1(static_cast<std::size_t>(m) * n, 0.5);
  std::vector<double> c2 = c1;
  dgemm(Trans::kYes, Trans::kYes, m, n, k, 2.0, a.data(), k, b.data(), n, 0.5,
        c1.data(), m);
  dgemm(Trans::kNo, Trans::kNo, m, n, k, 2.0, at.data(), m, bt.data(), k, 0.5,
        c2.data(), m);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-12);
  }
}

TEST(Blas, TrsmRightLowerTransposeInvertsMultiplication) {
  util::Rng rng(7);
  const int m = 4;
  const int n = 3;
  // Well-conditioned lower triangular L.
  std::vector<double> l(static_cast<std::size_t>(n) * n, 0.0);
  for (int j = 0; j < n; ++j) {
    l[static_cast<std::size_t>(j) * n + j] = 2.0 + j;
    for (int i = j + 1; i < n; ++i) {
      l[static_cast<std::size_t>(j) * n + i] = rng.uniform(-1, 1);
    }
  }
  std::vector<double> x(static_cast<std::size_t>(m) * n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  // B = X * L^T, then solve B * inv(L)^T => X.
  std::vector<double> b(static_cast<std::size_t>(m) * n, 0.0);
  dgemm(Trans::kNo, Trans::kYes, m, n, n, 1.0, x.data(), m, l.data(), n, 0.0,
        b.data(), m);
  dtrsm(Side::kRight, UpLo::kLower, Trans::kYes, Diag::kNonUnit, m, n, 1.0,
        l.data(), n, b.data(), m);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(b[i], x[i], 1e-12);
}

TEST(Blas, TrsmLeftLowerNoTrans) {
  const int n = 3;
  std::vector<double> l{2, 1, 3, 0, 4, 5, 0, 0, 6};  // lower 3x3, col-major
  std::vector<double> x{1, -2, 0.5};
  std::vector<double> b(3, 0.0);
  // b = L x
  dgemv(Trans::kNo, n, n, 1.0, l.data(), n, x.data(), 0.0, b.data());
  dtrsm(Side::kLeft, UpLo::kLower, Trans::kNo, Diag::kNonUnit, n, 1, 1.0,
        l.data(), n, b.data(), n);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(b[static_cast<std::size_t>(i)],
                x[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Blas, SyrkLowerMatchesGemm) {
  util::Rng rng(11);
  const int n = 5;
  const int k = 3;
  std::vector<double> a(static_cast<std::size_t>(n) * k);
  for (auto& v : a) v = rng.uniform(-1, 1);
  std::vector<double> c_syrk(static_cast<std::size_t>(n) * n, 1.0);
  std::vector<double> c_gemm = c_syrk;
  dsyrk(UpLo::kLower, Trans::kNo, n, k, -1.0, a.data(), n, 1.0, c_syrk.data(),
        n);
  dgemm(Trans::kNo, Trans::kYes, n, n, k, -1.0, a.data(), n, a.data(), n, 1.0,
        c_gemm.data(), n);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {  // lower triangle only
      EXPECT_NEAR(c_syrk[static_cast<std::size_t>(j) * n + i],
                  c_gemm[static_cast<std::size_t>(j) * n + i], 1e-12);
    }
  }
}

TEST(Blas, VectorKernels) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{4, 5, 6};
  EXPECT_DOUBLE_EQ(ddot(3, x.data(), y.data()), 32.0);
  EXPECT_NEAR(dnrm2(3, x.data()), std::sqrt(14.0), 1e-14);
  daxpy(3, 2.0, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  dscal(3, -1.0, x.data());
  EXPECT_DOUBLE_EQ(x[1], -2.0);
}

TEST(Blas, Ger) {
  std::vector<double> a(4, 0.0);
  std::vector<double> x{1, 2};
  std::vector<double> y{3, 4};
  dger(2, 2, 1.0, x.data(), y.data(), a.data(), 2);
  EXPECT_DOUBLE_EQ(a[0], 3.0);
  EXPECT_DOUBLE_EQ(a[1], 6.0);
  EXPECT_DOUBLE_EQ(a[2], 4.0);
  EXPECT_DOUBLE_EQ(a[3], 8.0);
}

TEST(Matrix, PackUnpackRoundTrip) {
  util::Rng rng(1);
  HostMatrix a(6, 5);
  a.fill_random(rng);
  auto packed = a.pack(1, 2, 4, 3);
  HostMatrix b(6, 5);
  b.unpack(1, 2, 4, 3, packed);
  for (int j = 2; j < 5; ++j) {
    for (int i = 1; i < 5; ++i) {
      EXPECT_DOUBLE_EQ(b.at(i, j), a.at(i, j));
    }
  }
  EXPECT_DOUBLE_EQ(b.at(0, 0), 0.0);  // untouched
}

TEST(Matrix, PhantomPackIsPhantom) {
  HostMatrix a(100, 100, /*functional=*/false);
  auto p = a.pack(0, 0, 100, 10);
  EXPECT_FALSE(p.is_backed());
  EXPECT_EQ(p.size(), 100u * 10 * 8);
  EXPECT_NO_THROW(a.unpack(0, 0, 100, 10, p));
}

TEST(Matrix, MakeSpdIsFactorizable) {
  util::Rng rng(5);
  HostMatrix a(8, 8);
  a.fill_random(rng);
  a.make_spd();
  // Diagonally dominant => SPD; every leading minor must be positive.
  for (int i = 0; i < 8; ++i) EXPECT_GT(a.at(i, i), 7.0);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(a.at(i, j), a.at(j, i));
    }
  }
}

}  // namespace
}  // namespace dacc::la
