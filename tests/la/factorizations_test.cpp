// Integration tests for the hybrid factorizations: numerics verified through
// the full remote middleware at small sizes, timing shapes checked in
// phantom mode at larger sizes.
#include "la/factorizations.hpp"

#include <gtest/gtest.h>

#include "la/lapack.hpp"
#include "rt/cluster.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dacc::la {
namespace {

rt::ClusterConfig la_cluster(int accelerators, bool functional,
                             bool local_gpus = false) {
  rt::ClusterConfig c;
  c.compute_nodes = 1;
  c.accelerators = accelerators;
  c.functional_gpus = functional;
  c.local_gpus = local_gpus;
  c.registry = la_registry();
  return c;
}

/// Runs `body` as a 1-rank job with `acs` statically assigned accelerators.
void run_la_job(rt::ClusterConfig config, std::uint32_t acs,
                std::function<void(rt::JobContext&, std::vector<Gpu*>&)> body) {
  rt::Cluster cluster(std::move(config));
  rt::JobSpec spec;
  spec.accelerators_per_rank = acs;
  spec.body = [&](rt::JobContext& job) {
    std::vector<std::unique_ptr<RemoteGpu>> remotes;
    std::vector<Gpu*> gpus;
    for (std::size_t i = 0; i < job.session().size(); ++i) {
      remotes.push_back(
          std::make_unique<RemoteGpu>(job.session()[i], job.ctx()));
      gpus.push_back(remotes.back().get());
    }
    body(job, gpus);
  };
  cluster.submit(spec);
  cluster.run();
}

HostMatrix random_matrix(int m, int n, std::uint64_t seed) {
  util::Rng rng(seed);
  HostMatrix a(m, n);
  a.fill_random(rng);
  return a;
}

// --- functional correctness (real numerics through the full stack) ---------

class QrRemoteP : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(QrRemoteP, MatchesHostReference) {
  const auto [n, nb, g] = GetParam();
  run_la_job(la_cluster(g, true), static_cast<std::uint32_t>(g),
             [&](rt::JobContext& job, std::vector<Gpu*>& gpus) {
               HostMatrix a = random_matrix(n, n, 1000 + n);
               HostMatrix original = a;
               std::vector<double> tau;
               const FactorResult r = dgeqrf_hybrid(
                   job.ctx(), gpus, a, nb, LaParams{}, &tau);
               EXPECT_GT(r.factor_time, 0u);
               EXPECT_LT(qr_residual(original, a, tau), 1e-10 * n);
               EXPECT_LT(qr_orthogonality(a, tau), 1e-11 * n);
             });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrRemoteP,
    ::testing::Values(std::tuple{16, 16, 1},  // single panel, 1 GPU
                      std::tuple{48, 16, 1}, std::tuple{48, 16, 2},
                      std::tuple{48, 16, 3},  // more GPUs than... 3 blocks
                      std::tuple{64, 16, 2},  // even split
                      std::tuple{72, 16, 3},  // ragged split
                      std::tuple{50, 16, 2}   // partial last block
                      ));

class CholRemoteP : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(CholRemoteP, MatchesHostReference) {
  const auto [n, nb, g] = GetParam();
  run_la_job(la_cluster(g, true), static_cast<std::uint32_t>(g),
             [&](rt::JobContext& job, std::vector<Gpu*>& gpus) {
               HostMatrix a = random_matrix(n, n, 2000 + n);
               a.make_spd();
               HostMatrix original = a;
               const FactorResult r =
                   dpotrf_hybrid(job.ctx(), gpus, a, nb);
               ASSERT_EQ(r.info, 0);
               EXPECT_LT(cholesky_residual(original, a), 1e-9 * n);
             });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CholRemoteP,
    ::testing::Values(std::tuple{16, 16, 1}, std::tuple{48, 16, 1},
                      std::tuple{48, 16, 2}, std::tuple{48, 16, 3},
                      std::tuple{64, 16, 2}, std::tuple{72, 16, 3},
                      std::tuple{50, 16, 2}));

TEST(FactorizationsLocal, QrOnLocalGpuMatchesReference) {
  rt::Cluster cluster(la_cluster(0, true, /*local_gpus=*/true));
  rt::JobSpec spec;
  spec.body = [](rt::JobContext& job) {
    LocalGpu local(job.local_gpu());
    std::vector<Gpu*> gpus{&local};
    HostMatrix a = random_matrix(48, 48, 77);
    HostMatrix original = a;
    std::vector<double> tau;
    (void)dgeqrf_hybrid(job.ctx(), gpus, a, 16, LaParams{}, &tau);
    EXPECT_LT(qr_residual(original, a, tau), 1e-10 * 48);
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(FactorizationsLocal, CholeskyOnLocalGpuMatchesReference) {
  rt::Cluster cluster(la_cluster(0, true, true));
  rt::JobSpec spec;
  spec.body = [](rt::JobContext& job) {
    LocalGpu local(job.local_gpu());
    std::vector<Gpu*> gpus{&local};
    HostMatrix a = random_matrix(48, 48, 88);
    a.make_spd();
    HostMatrix original = a;
    const FactorResult r = dpotrf_hybrid(job.ctx(), gpus, a, 16);
    ASSERT_EQ(r.info, 0);
    EXPECT_LT(cholesky_residual(original, a), 1e-9 * 48);
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Factorizations, CholeskyReportsIndefiniteMatrix) {
  run_la_job(la_cluster(1, true), 1,
             [&](rt::JobContext& job, std::vector<Gpu*>& gpus) {
               HostMatrix a = random_matrix(32, 32, 3);  // not SPD
               const FactorResult r = dpotrf_hybrid(job.ctx(), gpus, a, 16);
               EXPECT_NE(r.info, 0);
             });
}

// --- timing shapes (phantom mode, paper-scale behaviour) --------------------

double qr_gflops_with(int n, int g, bool local) {
  double out = 0.0;
  if (local) {
    rt::Cluster cluster(la_cluster(0, false, true));
    rt::JobSpec spec;
    spec.body = [&](rt::JobContext& job) {
      LocalGpu lg(job.local_gpu());
      std::vector<Gpu*> gpus{&lg};
      HostMatrix a(n, n, false);
      out = dgeqrf_hybrid(job.ctx(), gpus, a, 128).gflops;
    };
    cluster.submit(spec);
    cluster.run();
    return out;
  }
  run_la_job(la_cluster(g, false), static_cast<std::uint32_t>(g),
             [&](rt::JobContext& job, std::vector<Gpu*>& gpus) {
               HostMatrix a(n, n, false);
               out = dgeqrf_hybrid(job.ctx(), gpus, a, 128).gflops;
             });
  return out;
}

TEST(FactorizationShapes, MultiGpuScalesAtLargeN) {
  const double g1 = qr_gflops_with(4096, 1, false);
  const double g3 = qr_gflops_with(4096, 3, false);
  EXPECT_GT(g3, g1 * 1.5);
}

TEST(FactorizationShapes, RemoteSlowerThanLocalSingleGpu) {
  const double local = qr_gflops_with(4096, 1, true);
  const double remote = qr_gflops_with(4096, 1, false);
  EXPECT_LT(remote, local);
  EXPECT_GT(remote, local * 0.75);  // but not catastrophically slower
}

TEST(FactorizationShapes, SmallProblemsDoNotBenefitFromMoreGpus) {
  const double local1 = qr_gflops_with(1024, 1, true);
  const double remote3 = qr_gflops_with(1024, 3, false);
  EXPECT_LT(remote3, local1 * 1.3);  // no 2x magic at small N
}

TEST(FactorizationShapes, PhantomAndFunctionalChargeSameTime) {
  const int n = 96;
  SimDuration t_functional = 0;
  SimDuration t_phantom = 0;
  run_la_job(la_cluster(2, true), 2,
             [&](rt::JobContext& job, std::vector<Gpu*>& gpus) {
               HostMatrix a = random_matrix(n, n, 5);
               t_functional =
                   dgeqrf_hybrid(job.ctx(), gpus, a, 32).factor_time;
             });
  run_la_job(la_cluster(2, false), 2,
             [&](rt::JobContext& job, std::vector<Gpu*>& gpus) {
               HostMatrix a(n, n, false);
               t_phantom = dgeqrf_hybrid(job.ctx(), gpus, a, 32).factor_time;
             });
  EXPECT_EQ(t_functional, t_phantom);
}

}  // namespace
}  // namespace dacc::la
