// Shared fixture: an N-rank dmpi world with one fabric node per rank.
#pragma once

#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "dmpi/mpi.hpp"

namespace dacc::dmpi::testing {

class TestBed {
 public:
  explicit TestBed(int ranks, MpiParams params = {},
                   net::FabricParams fabric_params = {})
      : fabric_(engine_, ranks, fabric_params),
        world_(engine_, fabric_, make_nodes(ranks), params) {}

  sim::Engine& engine() { return engine_; }
  World& world() { return world_; }
  const Comm& comm() { return world_.world_comm(); }

  /// Spawns one process per entry; entry i runs as world rank i. Runs the
  /// simulation to completion.
  void run(std::vector<std::function<void(Mpi&, sim::Context&)>> mains) {
    for (std::size_t i = 0; i < mains.size(); ++i) {
      auto fn = std::move(mains[i]);
      engine_.spawn("rank" + std::to_string(i),
                    [this, i, fn = std::move(fn)](sim::Context& ctx) {
                      Mpi mpi(world_, ctx, static_cast<Rank>(i));
                      fn(mpi, ctx);
                    });
    }
    engine_.run();
  }

 private:
  static std::vector<net::NodeId> make_nodes(int ranks) {
    std::vector<net::NodeId> nodes(static_cast<std::size_t>(ranks));
    std::iota(nodes.begin(), nodes.end(), 0);
    return nodes;
  }

  sim::Engine engine_;
  net::Fabric fabric_;
  World world_;
};

}  // namespace dacc::dmpi::testing
