#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/testbed.hpp"
#include "util/units.hpp"

namespace dacc::dmpi {
namespace {

using testing::TestBed;

std::vector<std::byte> pattern_bytes(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 31 + static_cast<std::size_t>(seed)) &
                                  0xff);
  }
  return v;
}

TEST(P2P, EagerMessageRoundTripsBytes) {
  TestBed bed(2);
  const auto payload = pattern_bytes(1024, 3);
  bed.run({[&](Mpi& mpi, sim::Context&) {
             mpi.send(bed.comm(), 1, 7, util::Buffer::backed(
                                            std::vector<std::byte>(payload)));
           },
           [&](Mpi& mpi, sim::Context&) {
             Status st;
             auto msg = bed.comm().size() == 2
                            ? mpi.recv(bed.comm(), 0, 7, &st)
                            : util::Buffer{};
             EXPECT_EQ(st.source, 0);
             EXPECT_EQ(st.tag, 7);
             EXPECT_EQ(st.bytes, 1024u);
             ASSERT_TRUE(msg.is_backed());
             EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                                    msg.bytes().begin()));
           }});
}

TEST(P2P, RendezvousMessageRoundTripsBytes) {
  TestBed bed(2);
  const auto payload = pattern_bytes(256 * 1024, 5);  // above eager threshold
  bed.run({[&](Mpi& mpi, sim::Context&) {
             mpi.send(bed.comm(), 1, 1, util::Buffer::backed(
                                            std::vector<std::byte>(payload)));
           },
           [&](Mpi& mpi, sim::Context&) {
             auto msg = mpi.recv(bed.comm(), 0, 1);
             ASSERT_EQ(msg.size(), payload.size());
             EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                                    msg.bytes().begin()));
           }});
}

TEST(P2P, RecvBeforeSendWorks) {
  // Receiver posts first (rendezvous RTS finds a posted recv).
  TestBed bed(2);
  bool received = false;
  bed.run({[&](Mpi& mpi, sim::Context& ctx) {
             ctx.wait_for(10'000);  // ensure the recv is posted first
             mpi.send(bed.comm(), 1, 2, util::Buffer::backed_zero(64_KiB));
           },
           [&](Mpi& mpi, sim::Context&) {
             auto msg = mpi.recv(bed.comm(), 0, 2);
             EXPECT_EQ(msg.size(), 64_KiB);
             received = true;
           }});
  EXPECT_TRUE(received);
}

TEST(P2P, SendBeforeRecvWorks) {
  // Sender fires first; RTS parks in the unexpected queue.
  TestBed bed(2);
  bed.run({[&](Mpi& mpi, sim::Context&) {
             mpi.send(bed.comm(), 1, 2, util::Buffer::backed_zero(64_KiB));
           },
           [&](Mpi& mpi, sim::Context& ctx) {
             ctx.wait_for(1'000'000);  // 1 ms after the RTS arrived
             auto msg = mpi.recv(bed.comm(), 0, 2);
             EXPECT_EQ(msg.size(), 64_KiB);
           }});
}

TEST(P2P, TagsSelectMessages) {
  TestBed bed(2);
  bed.run({[&](Mpi& mpi, sim::Context&) {
             std::array<double, 1> a{1.0};
             std::array<double, 1> b{2.0};
             mpi.send(bed.comm(), 1, 10, util::Buffer::of<double>(a));
             mpi.send(bed.comm(), 1, 20, util::Buffer::of<double>(b));
           },
           [&](Mpi& mpi, sim::Context&) {
             // Receive in reverse tag order.
             auto m20 = mpi.recv(bed.comm(), 0, 20);
             auto m10 = mpi.recv(bed.comm(), 0, 10);
             EXPECT_EQ(m20.as<double>()[0], 2.0);
             EXPECT_EQ(m10.as<double>()[0], 1.0);
           }});
}

TEST(P2P, SameTagPreservesSendOrder) {
  TestBed bed(2);
  bed.run({[&](Mpi& mpi, sim::Context&) {
             for (int i = 0; i < 5; ++i) {
               std::array<int, 1> v{i};
               mpi.send(bed.comm(), 1, 3, util::Buffer::of<int>(v));
             }
           },
           [&](Mpi& mpi, sim::Context&) {
             for (int i = 0; i < 5; ++i) {
               auto m = mpi.recv(bed.comm(), 0, 3);
               EXPECT_EQ(m.as<int>()[0], i);
             }
           }});
}

TEST(P2P, AnySourceReceivesFromEither) {
  TestBed bed(3);
  bed.run({[&](Mpi& mpi, sim::Context& ctx) {
             ctx.wait_for(100);
             std::array<int, 1> v{10};
             mpi.send(bed.comm(), 2, 1, util::Buffer::of<int>(v));
           },
           [&](Mpi& mpi, sim::Context& ctx) {
             ctx.wait_for(200);
             std::array<int, 1> v{11};
             mpi.send(bed.comm(), 2, 1, util::Buffer::of<int>(v));
           },
           [&](Mpi& mpi, sim::Context&) {
             Status st1, st2;
             auto a = mpi.recv(bed.comm(), kAnySource, 1, &st1);
             auto b = mpi.recv(bed.comm(), kAnySource, 1, &st2);
             EXPECT_EQ(a.as<int>()[0], 10);
             EXPECT_EQ(b.as<int>()[0], 11);
             EXPECT_EQ(st1.source, 0);
             EXPECT_EQ(st2.source, 1);
           }});
}

TEST(P2P, AnyTagMatchesFirstArrival) {
  TestBed bed(2);
  bed.run({[&](Mpi& mpi, sim::Context&) {
             std::array<int, 1> v{99};
             mpi.send(bed.comm(), 1, 42, util::Buffer::of<int>(v));
           },
           [&](Mpi& mpi, sim::Context&) {
             Status st;
             auto m = mpi.recv(bed.comm(), 0, kAnyTag, &st);
             EXPECT_EQ(st.tag, 42);
             EXPECT_EQ(m.as<int>()[0], 99);
           }});
}

TEST(P2P, WildcardRendezvousReportsRealTag) {
  TestBed bed(2);
  bed.run({[&](Mpi& mpi, sim::Context&) {
             mpi.send(bed.comm(), 1, 77, util::Buffer::backed_zero(1_MiB));
           },
           [&](Mpi& mpi, sim::Context&) {
             Status st;
             auto m = mpi.recv(bed.comm(), kAnySource, kAnyTag, &st);
             EXPECT_EQ(st.tag, 77);
             EXPECT_EQ(st.source, 0);
             EXPECT_EQ(m.size(), 1_MiB);
           }});
}

TEST(P2P, NonblockingOverlap) {
  TestBed bed(2);
  bed.run({[&](Mpi& mpi, sim::Context&) {
             std::vector<Request> reqs;
             for (int i = 0; i < 4; ++i) {
               std::array<int, 1> v{i};
               reqs.push_back(
                   mpi.isend(bed.comm(), 1, i, util::Buffer::of<int>(v)));
             }
             mpi.wait_all(reqs);
           },
           [&](Mpi& mpi, sim::Context&) {
             std::vector<Request> reqs;
             for (int i = 0; i < 4; ++i) {
               reqs.push_back(mpi.irecv(bed.comm(), 0, i));
             }
             mpi.wait_all(reqs);
             for (int i = 0; i < 4; ++i) {
               EXPECT_EQ(reqs[static_cast<std::size_t>(i)]
                             .take_payload()
                             .as<int>()[0],
                         i);
             }
           }});
}

TEST(P2P, WaitAnyReturnsACompletedRequest) {
  TestBed bed(3);
  bed.run({[&](Mpi& mpi, sim::Context& ctx) {
             ctx.wait_for(5'000'000);  // slow sender
             mpi.send(bed.comm(), 2, 0, util::Buffer::backed_zero(8));
           },
           [&](Mpi& mpi, sim::Context&) {  // fast sender
             mpi.send(bed.comm(), 2, 1, util::Buffer::backed_zero(8));
           },
           [&](Mpi& mpi, sim::Context&) {
             std::vector<Request> reqs;
             reqs.push_back(mpi.irecv(bed.comm(), 0, 0));
             reqs.push_back(mpi.irecv(bed.comm(), 1, 1));
             const std::size_t first = mpi.wait_any(reqs);
             EXPECT_EQ(first, 1u);  // the fast sender's message
             mpi.wait_all(reqs);
           }});
}

TEST(P2P, PhantomPayloadsCarrySizeOnly) {
  TestBed bed(2);
  bed.run({[&](Mpi& mpi, sim::Context&) {
             mpi.send(bed.comm(), 1, 0, util::Buffer::phantom(32_MiB));
           },
           [&](Mpi& mpi, sim::Context&) {
             auto m = mpi.recv(bed.comm(), 0, 0);
             EXPECT_EQ(m.size(), 32_MiB);
             EXPECT_FALSE(m.is_backed());
           }});
}

TEST(P2P, SubCommunicatorIsolatesTraffic) {
  TestBed bed(3);
  const Comm& sub = bed.world().create_comm({2, 0});  // sub rank 0 = world 2
  bed.run({[&](Mpi& mpi, sim::Context&) {
             // World rank 0 is sub rank 1.
             std::array<int, 1> v{5};
             mpi.send(sub, 0, 9, util::Buffer::of<int>(v));
           },
           [&](Mpi&, sim::Context&) { /* not a member */ },
           [&](Mpi& mpi, sim::Context&) {
             Status st;
             auto m = mpi.recv(sub, 1, 9, &st);
             EXPECT_EQ(m.as<int>()[0], 5);
             EXPECT_EQ(st.source, 1);  // sub rank of world rank 0
           }});
}

TEST(P2P, SameTagDifferentCommsDoNotMatch) {
  TestBed bed(2);
  const Comm& sub = bed.world().create_comm({0, 1});
  bed.run({[&](Mpi& mpi, sim::Context&) {
             std::array<int, 1> w{1};
             std::array<int, 1> s{2};
             mpi.send(bed.comm(), 1, 4, util::Buffer::of<int>(w));
             mpi.send(sub, 1, 4, util::Buffer::of<int>(s));
           },
           [&](Mpi& mpi, sim::Context&) {
             // Receive on the sub communicator first: must get the sub
             // message even though the world message arrived earlier.
             auto m_sub = mpi.recv(sub, 0, 4);
             auto m_world = mpi.recv(bed.comm(), 0, 4);
             EXPECT_EQ(m_sub.as<int>()[0], 2);
             EXPECT_EQ(m_world.as<int>()[0], 1);
           }});
}

TEST(P2P, NonMemberCallThrows) {
  TestBed bed(2);
  const Comm& solo = bed.world().create_comm({0});
  bed.run({[&](Mpi&, sim::Context&) {},
           [&](Mpi& mpi, sim::Context&) {
             EXPECT_THROW(
                 mpi.send(solo, 0, 0, util::Buffer::backed_zero(1)),
                 std::logic_error);
           }});
}

TEST(P2P, ManyPairsSimultaneously) {
  const int n = 8;
  TestBed bed(n);
  std::vector<std::function<void(Mpi&, sim::Context&)>> mains;
  for (int r = 0; r < n; ++r) {
    mains.emplace_back([&, r](Mpi& mpi, sim::Context&) {
      const int partner = r ^ 1;
      std::array<int, 1> v{r};
      Request s = mpi.isend(bed.comm(), partner, 0, util::Buffer::of<int>(v));
      auto m = mpi.recv(bed.comm(), partner, 0);
      mpi.wait(s);
      EXPECT_EQ(m.as<int>()[0], partner);
    });
  }
  bed.run(std::move(mains));
}

}  // namespace
}  // namespace dacc::dmpi
