// Timing-model checks: the dmpi layer must reproduce the latency/bandwidth
// envelope the paper reports for its testbed (Section V.A): ~2 us
// small-message latency, ~2660 MiB/s PingPong bandwidth at 64 MiB.
#include <gtest/gtest.h>

#include "common/testbed.hpp"
#include "util/units.hpp"

namespace dacc::dmpi {
namespace {

using testing::TestBed;

/// One PingPong: rank 0 sends `bytes`, rank 1 echoes them back. Returns the
/// half-round-trip time as measured by rank 0 (IMB convention).
SimDuration pingpong_half_rtt(std::uint64_t bytes, int repetitions = 5) {
  TestBed bed(2);
  SimDuration half_rtt = 0;
  bed.run({[&](Mpi& mpi, sim::Context& ctx) {
             // Warm-up round, then timed rounds.
             for (int i = 0; i < repetitions + 1; ++i) {
               const SimTime start = ctx.now();
               mpi.send(bed.comm(), 1, 0, util::Buffer::phantom(bytes));
               (void)mpi.recv(bed.comm(), 1, 0);
               if (i > 0) half_rtt += (ctx.now() - start) / 2;
             }
             half_rtt /= static_cast<SimDuration>(repetitions);
           },
           [&](Mpi& mpi, sim::Context&) {
             for (int i = 0; i < repetitions + 1; ++i) {
               auto m = mpi.recv(bed.comm(), 0, 0);
               mpi.send(bed.comm(), 0, 0, std::move(m));
             }
           }});
  return half_rtt;
}

TEST(Timing, SmallMessageLatencyIsAboutTwoMicroseconds) {
  const SimDuration lat = pingpong_half_rtt(1);
  // Paper: "MPI over Infiniband latency of roughly two us".
  EXPECT_GE(to_us(lat), 1.5);
  EXPECT_LE(to_us(lat), 2.5);
}

TEST(Timing, PeakBandwidthMatchesPaper) {
  const SimDuration t = pingpong_half_rtt(64_MiB, 2);
  const double bw = mib_per_s(64_MiB, t);
  // Paper: ~2660 MiB/s at 64 MiB.
  EXPECT_GE(bw, 2550.0);
  EXPECT_LE(bw, 2750.0);
}

TEST(Timing, BandwidthIsMonotoneInMessageSize) {
  double prev = 0.0;
  for (std::uint64_t bytes : {4_KiB, 64_KiB, 1_MiB, 16_MiB, 64_MiB}) {
    const double bw = mib_per_s(bytes, pingpong_half_rtt(bytes, 2));
    EXPECT_GT(bw, prev);
    prev = bw;
  }
}

TEST(Timing, EagerRendezvousTransitionIsNotPathological) {
  // Bandwidth must not drop by more than ~40% across the protocol switch.
  const MpiParams params;
  const std::uint64_t below = params.eager_threshold;
  const std::uint64_t above = params.eager_threshold + 1024;
  const double bw_below = mib_per_s(below, pingpong_half_rtt(below, 3));
  const double bw_above = mib_per_s(above, pingpong_half_rtt(above, 3));
  EXPECT_GT(bw_above, bw_below * 0.6);
}

TEST(Timing, BackToBackSendsPipelineOnTheLink) {
  // Sending k messages back to back must take far less than k times a
  // single message's completion (the link serializes, overheads overlap).
  TestBed bed(2);
  SimDuration elapsed = 0;
  const int k = 8;
  bed.run({[&](Mpi& mpi, sim::Context& ctx) {
             const SimTime start = ctx.now();
             std::vector<Request> reqs;
             for (int i = 0; i < k; ++i) {
               reqs.push_back(mpi.isend(bed.comm(), 1, i,
                                        util::Buffer::phantom(1_MiB)));
             }
             mpi.wait_all(reqs);
             // Wait for an ack that everything arrived.
             (void)mpi.recv(bed.comm(), 1, 99);
             elapsed = ctx.now() - start;
           },
           [&](Mpi& mpi, sim::Context&) {
             for (int i = 0; i < k; ++i) {
               (void)mpi.recv(bed.comm(), 0, i);
             }
             mpi.send(bed.comm(), 0, 99, util::Buffer{});
           }});
  const SimDuration serial_bound =
      static_cast<SimDuration>(k) * transfer_time(1_MiB, 2700.0);
  // Everything beyond pure serialization should be small.
  EXPECT_LT(elapsed, serial_bound + 1_ms);
}

TEST(Timing, ContentionHalvesPerFlowBandwidth) {
  // Two senders to one receiver: per-flow bandwidth drops to ~half.
  TestBed bed(3);
  SimDuration elapsed = 0;
  bed.run({[&](Mpi& mpi, sim::Context&) {
             mpi.send(bed.comm(), 2, 0, util::Buffer::phantom(32_MiB));
           },
           [&](Mpi& mpi, sim::Context&) {
             mpi.send(bed.comm(), 2, 1, util::Buffer::phantom(32_MiB));
           },
           [&](Mpi& mpi, sim::Context& ctx) {
             const SimTime start = ctx.now();
             Request a = mpi.irecv(bed.comm(), 0, 0);
             Request b = mpi.irecv(bed.comm(), 1, 1);
             std::vector<Request> reqs{a, b};
             mpi.wait_all(reqs);
             elapsed = ctx.now() - start;
           }});
  const double agg_bw = mib_per_s(64_MiB, elapsed);
  // Aggregate stays near link rate; it cannot exceed it.
  EXPECT_LE(agg_bw, 2700.0 * 1.01);
  EXPECT_GE(agg_bw, 2400.0);
}

}  // namespace
}  // namespace dacc::dmpi
