// MPI_Iprobe / MPI_Test semantics.
#include <gtest/gtest.h>

#include "common/testbed.hpp"
#include "util/units.hpp"

namespace dacc::dmpi {
namespace {

using testing::TestBed;

TEST(Probe, SeesPendingEagerMessage) {
  TestBed bed(2);
  bed.run({[&](Mpi& mpi, sim::Context&) {
             mpi.send(bed.comm(), 1, 7, util::Buffer::backed_zero(100));
           },
           [&](Mpi& mpi, sim::Context& ctx) {
             ctx.wait_for(1'000'000);  // let the message arrive
             Status st;
             ASSERT_TRUE(mpi.iprobe(bed.comm(), 0, 7, &st));
             EXPECT_EQ(st.source, 0);
             EXPECT_EQ(st.tag, 7);
             EXPECT_EQ(st.bytes, 100u);
             // Probing does not consume: a recv still gets the data.
             auto msg = mpi.recv(bed.comm(), 0, 7);
             EXPECT_EQ(msg.size(), 100u);
             // Now nothing is pending.
             EXPECT_FALSE(mpi.iprobe(bed.comm(), 0, 7));
           }});
}

TEST(Probe, SeesPendingRendezvousHeader) {
  TestBed bed(2);
  bed.run({[&](Mpi& mpi, sim::Context&) {
             mpi.send(bed.comm(), 1, 3, util::Buffer::phantom(1_MiB));
           },
           [&](Mpi& mpi, sim::Context& ctx) {
             ctx.wait_for(1'000'000);
             Status st;
             ASSERT_TRUE(mpi.iprobe(bed.comm(), kAnySource, kAnyTag, &st));
             EXPECT_EQ(st.bytes, 1_MiB);  // the RTS carries the size
             (void)mpi.recv(bed.comm(), 0, 3);
           }});
}

TEST(Probe, DoesNotMatchWrongTagOrComm) {
  TestBed bed(2);
  const Comm& sub = bed.world().create_comm({0, 1});
  bed.run({[&](Mpi& mpi, sim::Context&) {
             mpi.send(bed.comm(), 1, 5, util::Buffer::backed_zero(8));
           },
           [&](Mpi& mpi, sim::Context& ctx) {
             ctx.wait_for(1'000'000);
             EXPECT_FALSE(mpi.iprobe(bed.comm(), 0, 6));  // wrong tag
             EXPECT_FALSE(mpi.iprobe(sub, 0, 5));         // wrong comm
             EXPECT_TRUE(mpi.iprobe(bed.comm(), 0, 5));
             (void)mpi.recv(bed.comm(), 0, 5);
           }});
}

TEST(Probe, PollingLoopWithIprobe) {
  // The classic server pattern: poll, then receive what showed up.
  TestBed bed(3);
  bed.run({[&](Mpi& mpi, sim::Context& ctx) {
             ctx.wait_for(200'000);
             std::array<int, 1> v{11};
             mpi.send(bed.comm(), 2, 1, util::Buffer::of<int>(v));
           },
           [&](Mpi& mpi, sim::Context& ctx) {
             ctx.wait_for(400'000);
             std::array<int, 1> v{22};
             mpi.send(bed.comm(), 2, 1, util::Buffer::of<int>(v));
           },
           [&](Mpi& mpi, sim::Context& ctx) {
             int received = 0;
             int sum = 0;
             while (received < 2) {
               Status st;
               if (mpi.iprobe(bed.comm(), kAnySource, 1, &st)) {
                 sum += mpi.recv(bed.comm(), st.source, 1).as<int>()[0];
                 ++received;
               } else {
                 ctx.wait_for(50'000);  // poll interval
               }
             }
             EXPECT_EQ(sum, 33);
           }});
}

TEST(Probe, TestReportsCompletion) {
  TestBed bed(2);
  bed.run({[&](Mpi& mpi, sim::Context& ctx) {
             Request r = mpi.irecv(bed.comm(), 1, 0);
             EXPECT_FALSE(mpi.test(r));
             ctx.wait_for(5'000'000);
             EXPECT_TRUE(mpi.test(r));
             (void)r.take_payload();
           },
           [&](Mpi& mpi, sim::Context&) {
             mpi.send(bed.comm(), 0, 0, util::Buffer::backed_zero(64));
           }});
}

}  // namespace
}  // namespace dacc::dmpi
