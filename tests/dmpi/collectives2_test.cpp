// gather / scatter / alltoall / sendrecv.
#include <gtest/gtest.h>

#include <array>

#include "common/testbed.hpp"
#include "util/units.hpp"

namespace dacc::dmpi {
namespace {

using testing::TestBed;

util::Buffer one_int(int v) {
  std::array<int, 1> a{v};
  return util::Buffer::of<int>(a);
}

std::vector<std::function<void(Mpi&, sim::Context&)>> replicate(
    int n, std::function<void(Mpi&, int)> fn) {
  std::vector<std::function<void(Mpi&, sim::Context&)>> mains;
  for (int r = 0; r < n; ++r) {
    mains.emplace_back([fn, r](Mpi& mpi, sim::Context&) { fn(mpi, r); });
  }
  return mains;
}

class Collectives2P : public ::testing::TestWithParam<int> {};

TEST_P(Collectives2P, GatherCollectsInRankOrder) {
  const int n = GetParam();
  TestBed bed(n);
  const int root = n - 1;
  std::vector<int> seen;
  bed.run(replicate(n, [&](Mpi& mpi, int r) {
    auto parts = mpi.gather(bed.comm(), root, one_int(r * 11));
    if (r == root) {
      ASSERT_EQ(parts.size(), static_cast<std::size_t>(n));
      for (auto& b : parts) seen.push_back(b.as<int>()[0]);
    } else {
      EXPECT_TRUE(parts.empty());
    }
  }));
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(seen[static_cast<std::size_t>(r)], r * 11);
  }
}

TEST_P(Collectives2P, ScatterDistributesChunks) {
  const int n = GetParam();
  TestBed bed(n);
  std::vector<int> got(static_cast<std::size_t>(n), -1);
  bed.run(replicate(n, [&](Mpi& mpi, int r) {
    std::vector<util::Buffer> chunks;
    if (r == 0) {
      for (int i = 0; i < n; ++i) chunks.push_back(one_int(100 + i));
    }
    auto mine = mpi.scatter(bed.comm(), 0, std::move(chunks));
    got[static_cast<std::size_t>(r)] = mine.as<int>()[0];
  }));
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(got[static_cast<std::size_t>(r)], 100 + r);
  }
}

TEST_P(Collectives2P, AlltoallTransposes) {
  const int n = GetParam();
  TestBed bed(n);
  std::vector<std::vector<int>> got(static_cast<std::size_t>(n));
  bed.run(replicate(n, [&](Mpi& mpi, int r) {
    std::vector<util::Buffer> chunks;
    for (int i = 0; i < n; ++i) chunks.push_back(one_int(r * 100 + i));
    auto in = mpi.alltoall(bed.comm(), std::move(chunks));
    ASSERT_EQ(in.size(), static_cast<std::size_t>(n));
    for (auto& b : in) {
      got[static_cast<std::size_t>(r)].push_back(b.as<int>()[0]);
    }
  }));
  // Rank r must hold {i*100 + r} for every source i.
  for (int r = 0; r < n; ++r) {
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(got[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                i * 100 + r);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Collectives2P,
                         ::testing::Values(1, 2, 3, 4, 7));

TEST(Sendrecv, OpposingExchangesDoNotDeadlock) {
  TestBed bed(2);
  std::vector<int> got(2, -1);
  bed.run({[&](Mpi& mpi, sim::Context&) {
             auto in = mpi.sendrecv(bed.comm(), 1, 5, one_int(10), 1, 5);
             got[0] = in.as<int>()[0];
           },
           [&](Mpi& mpi, sim::Context&) {
             auto in = mpi.sendrecv(bed.comm(), 0, 5, one_int(20), 0, 5);
             got[1] = in.as<int>()[0];
           }});
  EXPECT_EQ(got[0], 20);
  EXPECT_EQ(got[1], 10);
}

TEST(Sendrecv, LargePayloadsBothWays) {
  // Rendezvous-sized opposing exchanges (the halo-exchange pattern).
  TestBed bed(2);
  bed.run({[&](Mpi& mpi, sim::Context&) {
             auto in = mpi.sendrecv(bed.comm(), 1, 1,
                                    util::Buffer::phantom(4_MiB), 1, 1);
             EXPECT_EQ(in.size(), 2_MiB);
           },
           [&](Mpi& mpi, sim::Context&) {
             auto in = mpi.sendrecv(bed.comm(), 0, 1,
                                    util::Buffer::phantom(2_MiB), 0, 1);
             EXPECT_EQ(in.size(), 4_MiB);
           }});
}

TEST(Sendrecv, RingRotation) {
  const int n = 5;
  TestBed bed(n);
  std::vector<int> got(static_cast<std::size_t>(n), -1);
  std::vector<std::function<void(Mpi&, sim::Context&)>> mains;
  for (int r = 0; r < n; ++r) {
    mains.emplace_back([&, r](Mpi& mpi, sim::Context&) {
      const Rank right = (r + 1) % n;
      const Rank left = (r + n - 1) % n;
      Status st;
      auto in = mpi.sendrecv(bed.comm(), right, 9, one_int(r), left, 9, &st);
      got[static_cast<std::size_t>(r)] = in.as<int>()[0];
      EXPECT_EQ(st.source, left);
    });
  }
  bed.run(std::move(mains));
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(got[static_cast<std::size_t>(r)], (r + n - 1) % n);
  }
}

TEST(Collectives2, ScatterValidatesChunkCount) {
  TestBed bed(2);
  bed.run({[&](Mpi& mpi, sim::Context&) {
             std::vector<util::Buffer> chunks;  // wrong: 0 chunks
             EXPECT_THROW((void)mpi.scatter(bed.comm(), 0, std::move(chunks)),
                          std::invalid_argument);
             // Unblock rank 1 with a real scatter.
             std::vector<util::Buffer> good;
             good.push_back(one_int(1));
             good.push_back(one_int(2));
             (void)mpi.scatter(bed.comm(), 0, std::move(good));
           },
           [&](Mpi& mpi, sim::Context&) {
             auto mine = mpi.scatter(bed.comm(), 0, {});
             EXPECT_EQ(mine.as<int>()[0], 2);
           }});
}

}  // namespace
}  // namespace dacc::dmpi
