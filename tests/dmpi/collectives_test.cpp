#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/testbed.hpp"
#include "util/units.hpp"

namespace dacc::dmpi {
namespace {

using testing::TestBed;

std::vector<std::function<void(Mpi&, sim::Context&)>> replicate(
    int n, std::function<void(Mpi&, sim::Context&, int)> fn) {
  std::vector<std::function<void(Mpi&, sim::Context&)>> mains;
  for (int r = 0; r < n; ++r) {
    mains.emplace_back(
        [fn, r](Mpi& mpi, sim::Context& ctx) { fn(mpi, ctx, r); });
  }
  return mains;
}

class CollectivesP : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesP, BarrierHoldsEarlyArrivals) {
  const int n = GetParam();
  TestBed bed(n);
  std::vector<SimTime> exit_times(static_cast<std::size_t>(n));
  bed.run(replicate(n, [&](Mpi& mpi, sim::Context& ctx, int r) {
    // Stagger arrivals: rank r arrives at r*10 us.
    ctx.wait_for(static_cast<SimDuration>(r) * 10'000);
    mpi.barrier(bed.comm());
    exit_times[static_cast<std::size_t>(r)] = ctx.now();
  }));
  // Nobody may leave the barrier before the last arrival.
  const SimTime last_arrival = static_cast<SimTime>(n - 1) * 10'000;
  for (SimTime t : exit_times) EXPECT_GE(t, last_arrival);
}

TEST_P(CollectivesP, BcastDeliversRootData) {
  const int n = GetParam();
  TestBed bed(n);
  const int root = n / 2;
  std::vector<double> results(static_cast<std::size_t>(n), 0.0);
  bed.run(replicate(n, [&](Mpi& mpi, sim::Context&, int r) {
    util::Buffer data;
    if (r == root) {
      std::array<double, 2> v{3.25, -1.5};
      data = util::Buffer::of<double>(v);
    }
    auto out = mpi.bcast(bed.comm(), root, std::move(data));
    ASSERT_EQ(out.size(), 16u);
    results[static_cast<std::size_t>(r)] = out.as<double>()[0] +
                                           out.as<double>()[1];
  }));
  for (double v : results) EXPECT_DOUBLE_EQ(v, 1.75);
}

TEST_P(CollectivesP, AllreduceSumMatchesSerialSum) {
  const int n = GetParam();
  TestBed bed(n);
  std::vector<double> results(static_cast<std::size_t>(n), 0.0);
  bed.run(replicate(n, [&](Mpi& mpi, sim::Context&, int r) {
    results[static_cast<std::size_t>(r)] =
        mpi.allreduce_sum(bed.comm(), static_cast<double>(r + 1));
  }));
  const double expected = n * (n + 1) / 2.0;
  for (double v : results) EXPECT_DOUBLE_EQ(v, expected);
}

TEST_P(CollectivesP, AllreduceMax) {
  const int n = GetParam();
  TestBed bed(n);
  std::vector<std::uint64_t> results(static_cast<std::size_t>(n), 0);
  bed.run(replicate(n, [&](Mpi& mpi, sim::Context&, int r) {
    results[static_cast<std::size_t>(r)] = mpi.allreduce_max(
        bed.comm(), static_cast<std::uint64_t>((r * 7) % n));
  }));
  std::uint64_t expected = 0;
  for (int r = 0; r < n; ++r) {
    expected = std::max(expected, static_cast<std::uint64_t>((r * 7) % n));
  }
  for (auto v : results) EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesP,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13));

TEST(Collectives, BcastOnSubCommunicator) {
  TestBed bed(4);
  const Comm& sub = bed.world().create_comm({3, 1});
  std::vector<double> results(4, 0.0);
  bed.run({[&](Mpi&, sim::Context&) {},
           [&](Mpi& mpi, sim::Context&) {
             auto out = mpi.bcast(sub, 0, util::Buffer{});
             results[1] = out.as<double>()[0];
           },
           [&](Mpi&, sim::Context&) {},
           [&](Mpi& mpi, sim::Context&) {
             std::array<double, 1> v{9.0};
             (void)mpi.bcast(sub, 0, util::Buffer::of<double>(v));
             results[3] = 9.0;
           }});
  EXPECT_DOUBLE_EQ(results[1], 9.0);
  EXPECT_DOUBLE_EQ(results[3], 9.0);
}

TEST(Collectives, RepeatedBarriersStayConsistent) {
  const int n = 4;
  TestBed bed(n);
  std::vector<int> counters(n, 0);
  bed.run(replicate(n, [&](Mpi& mpi, sim::Context& ctx, int r) {
    for (int round = 0; round < 10; ++round) {
      // All counters must be equal at each barrier exit.
      mpi.barrier(bed.comm());
      for (int other : counters) EXPECT_EQ(other, round);
      mpi.barrier(bed.comm());
      counters[static_cast<std::size_t>(r)] = round + 1;
      (void)ctx;
    }
  }));
}

}  // namespace
}  // namespace dacc::dmpi
