// Command-stream batching: the kBatch codec, its error surfacing, and the
// end-to-end message-count win through the full stack (ISSUE: batched
// streams must cut the two-MPI-messages-per-request cost by >= 30% on
// small-op churn while leaving results bit-identical).
#include "rpc/batch.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "core/api.hpp"
#include "sim/trace.hpp"
#include "proto/wire.hpp"
#include "rpc/channel.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

namespace dacc::rpc {
namespace {

using proto::Op;
using proto::WireError;
using proto::WireReader;
using proto::WireWriter;

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

std::vector<BatchItem> sample_items() {
  std::vector<BatchItem> items;
  BatchItem alloc;
  alloc.op = Op::kMemAlloc;
  alloc.arg = 4096;
  items.push_back(alloc);
  BatchItem run;
  run.op = Op::kKernelRun;
  run.kernel = "dscal";
  run.launch.grid.x = 8;
  run.args = {std::int64_t{512}, 2.0, gpu::DevPtr{0xdead0000}};
  items.push_back(run);
  BatchItem check;
  check.op = Op::kKernelCreate;
  check.kernel = "daxpy";
  items.push_back(check);
  BatchItem free_op;
  free_op.op = Op::kMemFree;
  free_op.arg = 0xdead0000;
  items.push_back(free_op);
  return items;
}

TEST(BatchCodec, RoundTripsEveryBatchableOp) {
  const std::vector<BatchItem> in = sample_items();
  WireWriter w;
  encode_batch(w, in);
  WireReader r(w.finish());
  const std::vector<BatchItem> out = decode_batch(r);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(out[0].op, Op::kMemAlloc);
  EXPECT_EQ(out[0].arg, 4096u);
  EXPECT_EQ(out[1].op, Op::kKernelRun);
  EXPECT_EQ(out[1].kernel, "dscal");
  EXPECT_EQ(out[1].launch.grid.x, 8u);
  ASSERT_EQ(out[1].args.size(), 3u);
  EXPECT_EQ(std::get<gpu::DevPtr>(out[1].args[2]), gpu::DevPtr{0xdead0000});
  EXPECT_EQ(out[2].op, Op::kKernelCreate);
  EXPECT_EQ(out[2].kernel, "daxpy");
  EXPECT_EQ(out[3].op, Op::kMemFree);
  EXPECT_EQ(out[3].arg, 0xdead0000u);
  EXPECT_TRUE(r.exhausted());
}

TEST(BatchCodec, ReplyRoundTrips) {
  const std::vector<BatchResult> in = {
      {gpu::Result::kSuccess, gpu::DevPtr{0x1000}},
      {gpu::Result::kOutOfMemory, gpu::kNullDevPtr},
  };
  const std::vector<BatchResult> out =
      decode_batch_reply(encode_batch_reply(in), 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].status, gpu::Result::kSuccess);
  EXPECT_EQ(out[0].ptr, gpu::DevPtr{0x1000});
  EXPECT_EQ(out[1].status, gpu::Result::kOutOfMemory);
}

TEST(BatchCodec, BareStatusReplyExpandsToWholeBatch) {
  // A server rejecting the whole batch answers with a plain status frame;
  // the client must see one (identical) status per sub-request, never a
  // partial reply.
  const util::Buffer bare =
      WireWriter{}.result(gpu::Result::kInvalidValue).finish();
  const std::vector<BatchResult> out = decode_batch_reply(bare.view(), 3);
  ASSERT_EQ(out.size(), 3u);
  for (const BatchResult& r : out) {
    EXPECT_EQ(r.status, gpu::Result::kInvalidValue);
    EXPECT_EQ(r.ptr, gpu::kNullDevPtr);
  }
}

TEST(BatchCodec, ReplyCountMismatchThrows) {
  const std::vector<BatchResult> in = {{gpu::Result::kSuccess, 0}};
  EXPECT_THROW((void)decode_batch_reply(encode_batch_reply(in), 2),
               WireError);
}

TEST(BatchCodec, EmptyBatchRejected) {
  WireReader r(WireWriter{}.u32(0).finish());
  EXPECT_THROW((void)decode_batch(r), WireError);
}

TEST(BatchCodec, CountOverflowNamesTheFrame) {
  // Claimed count far beyond what the frame could hold must be rejected up
  // front (no quadratic work, no partial decode).
  WireReader r(WireWriter{}.u32(1'000'000).u64(0).finish());
  try {
    (void)decode_batch(r);
    FAIL() << "count overflow not rejected";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find("overflows"), std::string::npos)
        << e.what();
  }
}

TEST(BatchCodec, TruncatedSubRequestNamesIndexAndOp) {
  // Two sub-requests; the second one's u64 body is cut short.
  WireWriter w;
  w.u32(2);
  w.u32(static_cast<std::uint32_t>(Op::kMemAlloc)).u64(64);
  w.u32(static_cast<std::uint32_t>(Op::kMemFree)).u32(0xabcd);  // half a u64
  WireReader r(w.finish());
  try {
    (void)decode_batch(r);
    FAIL() << "truncated sub-request not rejected";
  } catch (const WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sub-request 1"), std::string::npos) << what;
    EXPECT_NE(what.find("MemFree"), std::string::npos) << what;
  }
}

TEST(BatchCodec, InnerTraceFlagRejected) {
  // Trace context belongs to the batch header; a flagged inner op word is
  // a framing violation, not a nested trace.
  WireWriter w;
  w.u32(1);
  w.u32(static_cast<std::uint32_t>(Op::kMemAlloc) | proto::kTraceContextFlag)
      .u64(64);
  WireReader r(w.finish());
  try {
    (void)decode_batch(r);
    FAIL() << "inner trace flag not rejected";
  } catch (const WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("trace flag"), std::string::npos) << what;
    EXPECT_NE(what.find("sub-request 0"), std::string::npos) << what;
  }
}

TEST(BatchCodec, NonBatchableInnerOpRejected) {
  // Bulk transfers keep the zero-copy pipeline; a kMemcpyHtoD inside a
  // batch frame can only be a corrupt or adversarial client.
  WireWriter w;
  w.u32(1);
  w.u32(static_cast<std::uint32_t>(Op::kMemcpyHtoD)).u64(0).u64(0);
  WireReader r(w.finish());
  try {
    (void)decode_batch(r);
    FAIL() << "non-batchable inner op not rejected";
  } catch (const WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("not batchable"), std::string::npos) << what;
    EXPECT_NE(what.find("MemcpyHtoD"), std::string::npos) << what;
  }
}

TEST(BatchCodec, BatchableSetIsExactlyTheSmallControlOps) {
  EXPECT_TRUE(batchable(Op::kMemAlloc));
  EXPECT_TRUE(batchable(Op::kMemFree));
  EXPECT_TRUE(batchable(Op::kKernelCreate));
  EXPECT_TRUE(batchable(Op::kKernelRun));
  EXPECT_FALSE(batchable(Op::kMemcpyHtoD));
  EXPECT_FALSE(batchable(Op::kMemcpyDtoH));
  EXPECT_FALSE(batchable(Op::kDeviceInfo));
  EXPECT_FALSE(batchable(Op::kPeerSend));
  EXPECT_FALSE(batchable(Op::kShutdown));
  EXPECT_FALSE(batchable(Op::kBatch));  // no nesting
}

// ---------------------------------------------------------------------------
// End-to-end through the full stack
// ---------------------------------------------------------------------------

struct ChurnOutcome {
  double checksum = 0.0;
  std::uint64_t rpc_msgs = 0;    ///< dacc_rpc_msgs_total{chan="fe-r0"}
  std::uint64_t rpc_ops = 0;     ///< dacc_rpc_ops_total{chan="fe-r0"}
  std::uint64_t flushes = 0;     ///< dacc_rpc_batch_size count
  std::uint64_t flushed_ops = 0; ///< dacc_rpc_batch_size sum
};

/// An async small-op churn stream: one bulk upload, then a burst of 24
/// async launches (the command stream), one readback, one free.
ChurnOutcome run_churn(rpc::StreamConfig batch) {
  rt::ClusterConfig config;
  config.compute_nodes = 1;
  config.accelerators = 1;
  config.metrics = true;
  config.batch = batch;
  rt::Cluster cluster(config);

  auto checksum = std::make_shared<double>(0.0);
  rt::JobSpec job;
  job.name = "churn";
  job.accelerators_per_rank = 1;
  job.body = [checksum](rt::JobContext& ctx) {
    core::Accelerator& ac = ctx.session()[0];
    const std::int64_t n = 512;
    const auto bytes = static_cast<std::uint64_t>(n) * 8;
    std::vector<double> host(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < host.size(); ++i) {
      host[i] = static_cast<double>(i % 17) + 0.25;
    }
    const gpu::DevPtr p = ac.mem_alloc(bytes);
    ac.memcpy_h2d(p, util::Buffer::of<double>(std::span<const double>(host)));
    std::vector<core::Future> burst;
    for (int i = 0; i < 24; ++i) {
      burst.push_back(ac.launch_async("dscal", {}, {n, 1.0 + 0.01 * i, p}));
    }
    ctx.session().wait_all(burst);
    for (core::Future& f : burst) {
      ASSERT_EQ(f.status(), gpu::Result::kSuccess);
    }
    util::Buffer out = ac.memcpy_d2h(p, bytes);
    const auto view = out.as<double>();
    *checksum = std::accumulate(view.begin(), view.end(), 0.0);
    ac.mem_free(p);
  };
  cluster.submit(job);
  cluster.run();

  const obs::Registry& m = cluster.metrics();
  const std::string chan = "{chan=\"fe-r" +
                           std::to_string(cluster.cn_rank(0)) + "\"}";
  ChurnOutcome o;
  o.checksum = *checksum;
  o.rpc_msgs = m.counter_value("dacc_rpc_msgs_total" + chan);
  o.rpc_ops = m.counter_value("dacc_rpc_ops_total" + chan);
  o.flushes = m.histogram_count("dacc_rpc_batch_size" + chan);
  o.flushed_ops = m.histogram_sum("dacc_rpc_batch_size" + chan);
  return o;
}

TEST(CommandStream, AsyncBurstCoalescesUnderWatermark) {
  const ChurnOutcome o = run_churn({/*enabled=*/true, /*watermark=*/16});
  // 28 ops total: alloc + h2d + 24 launches + d2h + free. The launch burst
  // is fully enqueued before the proxy runs, so it flushes as 16 + 8.
  EXPECT_EQ(o.rpc_ops, 28u);
  EXPECT_EQ(o.flushed_ops, 28u);
  EXPECT_LT(o.flushes, 10u);  // far fewer command groups than ops
  EXPECT_GT(o.rpc_ops, o.rpc_msgs);  // fewer messages than ops: batched
}

TEST(CommandStream, WatermarkBoundsFlushSize) {
  const ChurnOutcome small = run_churn({/*enabled=*/true, /*watermark=*/4});
  // 24 launches at watermark 4 need at least 6 flushes (plus the four
  // unbatchable/lone ops around them).
  EXPECT_EQ(small.flushed_ops, 28u);
  EXPECT_GE(small.flushes, 10u);
}

TEST(CommandStream, MessageCountDropsAtLeastThirtyPercent) {
  // The ISSUE's regression guard: batching must cut the front-end message
  // count for op-dense streams by >= 30% versus the unbatched wire.
  const ChurnOutcome off = run_churn({/*enabled=*/false, /*watermark=*/16});
  const ChurnOutcome on = run_churn({/*enabled=*/true, /*watermark=*/16});
  EXPECT_EQ(off.rpc_ops, on.rpc_ops);
  ASSERT_GT(off.rpc_msgs, 0u);
  const double ratio = static_cast<double>(on.rpc_msgs) /
                       static_cast<double>(off.rpc_msgs);
  EXPECT_LE(ratio, 0.7) << "batched msgs " << on.rpc_msgs << " vs unbatched "
                        << off.rpc_msgs;
  // Committed msgs-per-op ceiling for the batched churn stream (unbatched
  // runs at >= 2.0: request + response per op).
  const double per_op = static_cast<double>(on.rpc_msgs) /
                        static_cast<double>(on.rpc_ops);
  EXPECT_LE(per_op, 1.4);
}

TEST(CommandStream, SimulatedResultsMatchUnbatched) {
  // Batching changes the wire, not the computation: the readback checksum
  // must be bit-identical with and without it.
  const ChurnOutcome off = run_churn({/*enabled=*/false, /*watermark=*/16});
  const ChurnOutcome on = run_churn({/*enabled=*/true, /*watermark=*/16});
  EXPECT_EQ(off.checksum, on.checksum);
  EXPECT_NE(off.checksum, 0.0);
}

TEST(CommandStream, SynchronousCallsNeverBatch) {
  // A sync caller blocks on each future, so its ops are always alone in the
  // mailbox: with batching enabled every flush is still a group of one and
  // the wire stays byte-identical to the legacy format.
  rt::ClusterConfig config;
  config.compute_nodes = 1;
  config.accelerators = 1;
  config.metrics = true;
  config.batch = {/*enabled=*/true, /*watermark=*/16};
  rt::Cluster cluster(config);
  rt::JobSpec job;
  job.accelerators_per_rank = 1;
  job.body = [](rt::JobContext& ctx) {
    core::Accelerator& ac = ctx.session()[0];
    const gpu::DevPtr p = ac.mem_alloc(1_KiB);
    ac.launch("dscal", {}, {std::int64_t{128}, 2.0, p});
    ac.mem_free(p);
  };
  cluster.submit(job);
  cluster.run();
  const obs::Registry& m = cluster.metrics();
  const std::string chan = "{chan=\"fe-r" +
                           std::to_string(cluster.cn_rank(0)) + "\"}";
  EXPECT_EQ(m.histogram_count("dacc_rpc_batch_size" + chan),
            m.histogram_sum("dacc_rpc_batch_size" + chan));
  EXPECT_EQ(m.counter_value("dacc_rpc_ops_total" + chan), 3u);
}

TEST(CommandStream, BatchedAllocsYieldUsablePointers) {
  // Alloc results travel in the batched completion frame; the pointers must
  // come back per-sub-request and be usable by later (unbatched) ops.
  rt::ClusterConfig config;
  config.compute_nodes = 1;
  config.accelerators = 1;
  config.batch = {/*enabled=*/true, /*watermark=*/8};
  rt::Cluster cluster(config);
  rt::JobSpec job;
  job.accelerators_per_rank = 1;
  job.body = [](rt::JobContext& ctx) {
    core::Accelerator& ac = ctx.session()[0];
    std::vector<core::Future> allocs;
    for (int i = 0; i < 6; ++i) {
      allocs.push_back(ac.mem_alloc_async(2_KiB));
    }
    ctx.session().wait_all(allocs);
    std::vector<gpu::DevPtr> ptrs;
    for (core::Future& f : allocs) {
      ASSERT_EQ(f.status(), gpu::Result::kSuccess);
      ptrs.push_back(f.ptr());
    }
    // Distinct allocations, each independently usable and freeable.
    for (std::size_t i = 0; i < ptrs.size(); ++i) {
      for (std::size_t j = i + 1; j < ptrs.size(); ++j) {
        ASSERT_NE(ptrs[i], ptrs[j]);
      }
    }
    ac.memcpy_h2d(ptrs[3], util::Buffer::backed_zero(2_KiB));
    for (const gpu::DevPtr p : ptrs) ac.mem_free(p);
  };
  cluster.submit(job);
  cluster.run();
}

TEST(CommandStream, BatchChildSpansStitchSubOpsThroughTheFrame) {
  // A batch frame used to trace as one opaque span, hiding the small ops it
  // carried. Both wire ends now derive per-sub-op child span ids with
  // batch_sub_span (no extra bytes on the wire): the front-end records one
  // child per sub-op under the batch span, the daemon parents its per-item
  // execution spans on those, and flow arrows stitch each small op through
  // the frame.
  rt::ClusterConfig config;
  config.compute_nodes = 1;
  config.accelerators = 1;
  config.trace = true;
  config.batch = {/*enabled=*/true, /*watermark=*/16};
  rt::Cluster cluster(config);
  rt::JobSpec job;
  job.accelerators_per_rank = 1;
  job.body = [](rt::JobContext& ctx) {
    core::Accelerator& ac = ctx.session()[0];
    const gpu::DevPtr p = ac.mem_alloc(4_KiB);
    std::vector<core::Future> burst;
    for (int i = 0; i < 8; ++i) {
      burst.push_back(
          ac.launch_async("dscal", {}, {std::int64_t{64}, 2.0, p}));
    }
    ctx.session().wait_all(burst);
    ac.mem_free(p);
  };
  cluster.submit(job);
  cluster.run();

  const std::vector<sim::Tracer::Span> spans = cluster.tracer().spans();
  // Locate a multi-op batch frame span on the front-end track.
  const sim::Tracer::Span* batch = nullptr;
  std::size_t count = 0;
  for (const auto& s : spans) {
    if (s.track.rfind("fe-", 0) != 0 || s.name.rfind("batch[", 0) != 0) {
      continue;
    }
    const std::size_t n =
        static_cast<std::size_t>(std::stoul(s.name.substr(6)));
    if (n > 1) {
      batch = &s;
      count = n;
      break;
    }
  }
  ASSERT_NE(batch, nullptr) << "no multi-op batch frame was traced";
  EXPECT_EQ(batch->span_id, batch->trace_id);  // batch root doubles as trace

  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t child_id = batch_sub_span(batch->span_id, i);
    const sim::Tracer::Span* fe_child = nullptr;
    const sim::Tracer::Span* daemon_child = nullptr;
    for (const auto& s : spans) {
      if (s.trace_id != batch->trace_id) continue;
      if (s.span_id == child_id) fe_child = &s;
      if (s.parent_id == child_id && s.track.rfind("daemon-", 0) == 0) {
        daemon_child = &s;
      }
    }
    ASSERT_NE(fe_child, nullptr) << "missing front-end child span " << i;
    EXPECT_EQ(fe_child->parent_id, batch->span_id);
    EXPECT_GE(fe_child->begin, batch->begin);
    EXPECT_LE(fe_child->end, batch->end);
    ASSERT_NE(daemon_child, nullptr)
        << "daemon sub-op span " << i << " not parented on the derived id";
    EXPECT_GE(daemon_child->begin, batch->begin);
    EXPECT_LE(daemon_child->end, batch->end);
  }
  // Sibling sub-ops must not collide.
  for (std::uint32_t i = 0; i + 1 < count; ++i) {
    EXPECT_NE(batch_sub_span(batch->span_id, i),
              batch_sub_span(batch->span_id, i + 1));
  }
}

}  // namespace
}  // namespace dacc::rpc
