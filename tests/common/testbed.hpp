// Shared test scaffolding: a bare N-rank dmpi world (MpiBed) and
// whole-cluster helpers (small_cluster / run_job), so the dmpi, arm, rt and
// recovery suites stop growing private copies of the same fixtures.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <iostream>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "dmpi/mpi.hpp"
#include "rt/cluster.hpp"

namespace dacc::testing {

/// An N-rank dmpi world with one fabric node per rank.
class MpiBed {
 public:
  explicit MpiBed(int ranks, dmpi::MpiParams params = {},
                  net::FabricParams fabric_params = {})
      : fabric_(engine_, ranks, fabric_params),
        world_(engine_, fabric_, make_nodes(ranks), params) {}

  sim::Engine& engine() { return engine_; }
  net::Fabric& fabric() { return fabric_; }
  dmpi::World& world() { return world_; }
  const dmpi::Comm& comm() { return world_.world_comm(); }

  /// Spawns one process per entry; entry i runs as world rank i. Runs the
  /// simulation to completion.
  void run(std::vector<std::function<void(dmpi::Mpi&, sim::Context&)>> mains) {
    for (std::size_t i = 0; i < mains.size(); ++i) {
      auto fn = std::move(mains[i]);
      engine_.spawn("rank" + std::to_string(i),
                    [this, i, fn = std::move(fn)](sim::Context& ctx) {
                      dmpi::Mpi mpi(world_, ctx, static_cast<dmpi::Rank>(i));
                      fn(mpi, ctx);
                    });
    }
    engine_.run();
  }

 private:
  static std::vector<net::NodeId> make_nodes(int ranks) {
    std::vector<net::NodeId> nodes(static_cast<std::size_t>(ranks));
    std::iota(nodes.begin(), nodes.end(), 0);
    return nodes;
  }

  sim::Engine engine_;
  net::Fabric fabric_;
  dmpi::World world_;
};

/// Default small cluster used by the middleware suites.
inline rt::ClusterConfig small_cluster(int cns = 2, int acs = 3) {
  rt::ClusterConfig c;
  c.compute_nodes = cns;
  c.accelerators = acs;
  return c;
}

/// Replicated-ARM cluster (DESIGN.md §11): the lease table lives behind
/// `replicas` Raft nodes instead of a single ARM rank. Same shape as
/// small_cluster otherwise, so suites can run the identical job body
/// against both deployments.
inline rt::ClusterConfig replicated_cluster(int cns = 2, int acs = 3,
                                            int replicas = 3,
                                            std::uint64_t seed = 0xDACC'5EEDull) {
  rt::ClusterConfig c = small_cluster(cns, acs);
  c.arm_replicas = replicas;
  c.raft.seed = seed;
  return c;
}

/// Runs `body` as a single job rank on a fresh cluster.
inline void run_job(rt::ClusterConfig config,
                    std::function<void(rt::JobContext&)> body) {
  rt::Cluster cluster(std::move(config));
  rt::JobSpec spec;
  spec.body = std::move(body);
  cluster.submit(spec);
  cluster.run();
}

/// Post-mortem on test failure: construct one of these next to a Cluster
/// and, if the enclosing gtest test has failed by the time the scope ends,
/// the cluster's flight recorder is dumped to stderr — the last N control-
/// plane events (elections, revocations, retries, chaos) that led up to
/// the failing assertion.
class FlightOnFailure {
 public:
  explicit FlightOnFailure(rt::Cluster& cluster) : cluster_(cluster) {}
  FlightOnFailure(const FlightOnFailure&) = delete;
  FlightOnFailure& operator=(const FlightOnFailure&) = delete;
  ~FlightOnFailure() {
    if (::testing::Test::HasFailure()) {
      std::cerr << "[flight recorder post-mortem]\n";
      cluster_.dump_flight_recorder(std::cerr);
    }
  }

 private:
  rt::Cluster& cluster_;
};

}  // namespace dacc::testing

namespace dacc::dmpi::testing {
// Compatibility alias for the suites written against the old per-directory
// fixture name.
using TestBed = dacc::testing::MpiBed;
}  // namespace dacc::dmpi::testing
