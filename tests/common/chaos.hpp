// Deterministic chaos schedules for the replicated-ARM test tier
// (DESIGN.md §11.5): fault points are derived from an explicit seed in
// *simulated* time and armed on the cluster before it runs, so the same
// seed produces the same kills at the same instants under every execution
// backend and shard count — a chaos run is as reproducible as a quiet one.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "rt/cluster.hpp"
#include "util/rng.hpp"

namespace dacc::testing {

/// A seeded schedule of fault injections against one cluster.
struct ChaosSchedule {
  struct Event {
    enum class Kind : std::uint32_t {
      kKillLeader,   ///< kill whichever ARM replica leads at `at`
      kKillReplica,  ///< kill ARM replica `target`
      kCutLink,      ///< fail fabric node `target`'s NIC
    };
    Kind kind = Kind::kKillLeader;
    SimTime at = 0;
    int target = -1;
  };

  std::vector<Event> events;

  /// `count` leader kills at seeded instants in [from, to): the classic
  /// "kill the leader mid-commit" drill. Points are sorted and spaced at
  /// least `min_gap` apart so every kill lands in a re-elected group.
  static ChaosSchedule leader_kills(std::uint64_t seed, int count,
                                    SimTime from, SimTime to,
                                    SimDuration min_gap) {
    util::Rng rng(seed ^ 0xC4A0'5C4Aull);
    ChaosSchedule s;
    SimTime at = from;
    for (int i = 0; i < count; ++i) {
      const SimTime span = to > at ? to - at : 1;
      at += static_cast<SimTime>(rng.next_below(
          static_cast<std::uint64_t>(span / (count - i) + 1)));
      s.events.push_back({Event::Kind::kKillLeader, at, -1});
      at += min_gap;
    }
    return s;
  }

  /// Adds one follower (non-leader) replica kill: replica `replica` dies at
  /// `at` regardless of its role then.
  ChaosSchedule& kill_replica(int replica, SimTime at) {
    events.push_back({Event::Kind::kKillReplica, at, replica});
    return *this;
  }

  /// Adds a link cut for fabric node `node` at `at`.
  ChaosSchedule& cut_link(net::NodeId node, SimTime at) {
    events.push_back({Event::Kind::kCutLink, at, static_cast<int>(node)});
    return *this;
  }

  /// Arms every event on `cluster`. Call after construction, before run().
  void arm(rt::Cluster& cluster) const {
    for (const Event& e : events) {
      switch (e.kind) {
        case Event::Kind::kKillLeader:
          cluster.kill_arm_leader(e.at);
          break;
        case Event::Kind::kKillReplica:
          cluster.kill_arm_replica(e.target, e.at);
          break;
        case Event::Kind::kCutLink:
          cluster.fail_link(static_cast<net::NodeId>(e.target), e.at);
          break;
      }
    }
  }

  /// Human-readable schedule (test failure messages).
  std::string describe() const {
    std::ostringstream os;
    for (const Event& e : events) {
      switch (e.kind) {
        case Event::Kind::kKillLeader:
          os << "kill-leader@" << e.at;
          break;
        case Event::Kind::kKillReplica:
          os << "kill-r" << e.target << "@" << e.at;
          break;
        case Event::Kind::kCutLink:
          os << "cut-n" << e.target << "@" << e.at;
          break;
      }
      os << " ";
    }
    return os.str();
  }
};

}  // namespace dacc::testing
