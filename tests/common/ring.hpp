// Multi-chain ring workload on a raw sim::Engine: `chains` independent hop
// chains circulate a `nodes`-node ring, every hop a cross-node post subject
// to the pair's latency floor. The workload exercises exactly the machinery
// the asynchronous parallel backend adds — per-shard-pair lookahead, staged
// inboxes, horizon advancement — while staying trivially race-free: each
// chain's state is touched only from that chain's own events, and event
// delivery is the synchronization.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"

namespace dacc::testing {

struct RingOpts {
  sim::ExecBackend backend = sim::ExecBackend::kThread;
  int shards = 0;  ///< parallel shard hint (0 = auto); ignored when serial
  int nodes = 8;
  int chains = 4;
  int hops = 64;            ///< events per chain
  SimDuration step = 100;   ///< requested hop delta (the floor may clamp it)
  SimDuration lookahead = 1000;
  /// When > 0, register per-node-pair latency overrides with this default
  /// (the partitioner's short/long reference). Semantic in every backend.
  SimDuration override_default = 0;
  std::vector<sim::Engine::LatencyOverride> links;
  std::vector<int> shard_map;  ///< non-empty: explicit placement
};

struct RingResult {
  std::uint64_t events = 0;
  SimTime final_now = 0;
  std::vector<std::uint64_t> chain_hops;
  std::vector<SimTime> chain_last;  ///< arrival time of each chain's last hop
  std::vector<SimTime> chain_sum;   ///< sum of hop times (whole trajectory)
  sim::Engine::ParallelStats pstats;

  /// Simulation-observable equality: everything except scheduling stats.
  bool same_simulation(const RingResult& o) const {
    return events == o.events && final_now == o.final_now &&
           chain_hops == o.chain_hops && chain_last == o.chain_last &&
           chain_sum == o.chain_sum;
  }
};

inline RingResult run_ring(const RingOpts& o) {
  sim::Engine engine(o.backend, o.shards);
  engine.set_node_count(o.nodes);
  engine.set_lookahead(o.lookahead);
  if (o.override_default > 0) {
    engine.set_lookahead_overrides(o.override_default, o.links);
  }
  if (!o.shard_map.empty()) engine.set_shard_map(o.shard_map);

  struct Chain {
    std::uint64_t hops = 0;
    SimTime last = 0;
    SimTime sum = 0;
  };
  std::vector<Chain> state(static_cast<std::size_t>(o.chains));
  std::function<void(int, int)> hop = [&](int chain, int node) {
    Chain& c = state[static_cast<std::size_t>(chain)];
    ++c.hops;
    c.last = engine.now();
    c.sum += engine.now();
    if (c.hops < static_cast<std::uint64_t>(o.hops)) {
      const int next = (node + 1) % o.nodes;
      engine.post(next, engine.now() + o.step,
                  [&hop, chain, next] { hop(chain, next); });
    }
  };
  for (int c = 0; c < o.chains; ++c) {
    const int start = static_cast<int>(
        (static_cast<std::int64_t>(c) * o.nodes) / o.chains);
    engine.post(start, 0, [&hop, c, start] { hop(c, start); });
  }
  engine.run();

  RingResult r;
  r.events = engine.events_executed();
  r.final_now = engine.now();
  for (const Chain& c : state) {
    r.chain_hops.push_back(c.hops);
    r.chain_last.push_back(c.last);
    r.chain_sum.push_back(c.sum);
  }
  r.pstats = engine.parallel_stats();
  return r;
}

}  // namespace dacc::testing
