// Deterministic link-fault injection: a NIC that goes dark (or degrades)
// at a chosen simulated time drops exactly the transfers that would still
// be on the wire, leaves every other node's calibrated bandwidth intact,
// and surfaces as clean timeouts — not hangs — at the dmpi and bulk
// transfer layers above.
#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include "common/testbed.hpp"
#include "proto/transfer.hpp"
#include "util/units.hpp"

namespace dacc::net {
namespace {

FabricParams exact_params() {
  FabricParams p;
  p.link_bandwidth_mib_s = 1000.0;  // 1 MiB serializes in exactly 1 ms
  p.wire_latency = 1000;            // 1 us
  p.per_message_overhead = 0;
  return p;
}

TEST(FabricFault, SourceDownBeforeStartDropsWithoutOccupancy) {
  sim::Engine engine;
  Fabric fabric(engine, 2, exact_params());
  fabric.fail_link(0, 0);
  const Fabric::Outcome out = fabric.transfer_outcome(0, 1, 1_MiB, 0);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(fabric.drops(0), 1u);
  EXPECT_EQ(fabric.total_drops(), 1u);
  // A dead NIC reserves nothing: no phantom contention for later traffic.
  EXPECT_EQ(fabric.tx_busy(0), 0u);
  EXPECT_EQ(fabric.rx_busy(1), 0u);
}

TEST(FabricFault, SourceFailsMidDrainDropsInFlight) {
  sim::Engine engine;
  Fabric fabric(engine, 2, exact_params());
  // 4 MiB drains until 1 us + 4 ms; the NIC dies at 2 ms, mid-stream.
  fabric.fail_link(0, 2'000'000);
  const Fabric::Outcome out = fabric.transfer_outcome(0, 1, 4_MiB, 0);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(fabric.drops(0), 1u);
}

TEST(FabricFault, TransferCompletingBeforeFailureIsDelivered) {
  sim::Engine engine;
  Fabric fabric(engine, 2, exact_params());
  fabric.fail_link(0, 2'000'000);
  // 1 MiB is fully drained at ~1 ms, before the 2 ms failure.
  const Fabric::Outcome out = fabric.transfer_outcome(0, 1, 1_MiB, 0);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.at, 1000u + 1'000'000u);
  EXPECT_EQ(fabric.drops(0), 0u);
}

TEST(FabricFault, DestinationDownChargesSenderAndCountsDstDrop) {
  sim::Engine engine;
  Fabric fabric(engine, 2, exact_params());
  fabric.fail_link(1, 0);
  const Fabric::Outcome out = fabric.transfer_outcome(0, 1, 1_MiB, 0);
  EXPECT_FALSE(out.delivered);
  // The sender serialized the payload onto the wire before anyone could
  // know the receiver was gone; only the rx side skips occupancy.
  EXPECT_EQ(fabric.tx_busy(0), 1'000'000u);
  EXPECT_EQ(fabric.rx_busy(1), 0u);
  EXPECT_EQ(fabric.drops(1), 1u);
  EXPECT_EQ(fabric.drops(0), 0u);
}

TEST(FabricFault, LoopbackIgnoresNicFailure) {
  sim::Engine engine;
  Fabric fabric(engine, 2, exact_params());
  fabric.fail_link(0, 0);
  const Fabric::Outcome out = fabric.transfer_outcome(0, 0, 1_MiB, 0);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(fabric.total_drops(), 0u);
}

TEST(FabricFault, UnaffectedPairsKeepCalibratedBandwidth) {
  sim::Engine engine;
  Fabric fabric(engine, 4, exact_params());
  fabric.fail_link(0, 0);
  (void)fabric.transfer_outcome(0, 1, 8_MiB, 0);  // dropped
  // The 2 -> 3 pair still gets the exact calibrated cost.
  const Fabric::Outcome out = fabric.transfer_outcome(2, 3, 1_MiB, 0);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.at, 1000u + 1'000'000u);
  // And traffic *into* the dead node from a healthy sender is a dst drop,
  // not interference for anyone else.
  (void)fabric.transfer_outcome(2, 0, 1_MiB, 0);
  const Fabric::Outcome again = fabric.transfer_outcome(3, 2, 1_MiB, 0);
  EXPECT_TRUE(again.delivered);
}

TEST(FabricFault, DegradedLinkStretchesSerialization) {
  sim::Engine engine;
  Fabric fabric(engine, 2, exact_params());
  fabric.degrade_link(0, 0, 0.5);
  const Fabric::Outcome out = fabric.transfer_outcome(0, 1, 1_MiB, 0);
  EXPECT_TRUE(out.delivered);  // degraded, not dead
  EXPECT_EQ(out.at, 1000u + 2'000'000u);
}

TEST(FabricFault, RepeatedFailuresKeepEarliest) {
  sim::Engine engine;
  Fabric fabric(engine, 2, exact_params());
  fabric.fail_link(0, 5'000'000);
  fabric.fail_link(0, 1'000'000);  // earlier wins
  fabric.fail_link(0, 9'000'000);  // later is ignored
  EXPECT_FALSE(fabric.link_failed(0, 999'999));
  EXPECT_TRUE(fabric.link_failed(0, 1'000'000));
  EXPECT_TRUE(fabric.link_failed(0, 2'000'000));
}

TEST(FabricFault, DeliverDiscardsCallbackOnDrop) {
  sim::Engine engine;
  Fabric fabric(engine, 2, exact_params());
  fabric.fail_link(1, 0);
  bool fired = false;
  fabric.deliver(0, 1, 1_MiB, 0, [&] { fired = true; });
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(fabric.drops(1), 1u);
}

// --- dmpi / bulk-transfer layers on a failed link ---------------------------

TEST(FabricFault, EagerMessageIsLostSilently) {
  dacc::testing::MpiBed bed(2);
  bed.fabric().fail_link(1, 0);
  bed.run({
      [&](dmpi::Mpi& mpi, sim::Context&) {
        // Eager sends are fire-and-forget: the sender never blocks on a
        // dead receiver.
        mpi.send(bed.comm(), 1, 5, util::Buffer::backed_zero(1_KiB));
      },
      [&](dmpi::Mpi& mpi, sim::Context& ctx) {
        ctx.wait_for(5_ms);
        EXPECT_FALSE(mpi.iprobe(bed.comm(), 0, 5));
      },
  });
  EXPECT_GE(bed.fabric().drops(1), 1u);
}

TEST(FabricFault, RendezvousRecvTimesOutCleanlyAndLinkStaysUsable) {
  // Rank 0's NIC dies right after its rendezvous handshake would begin.
  // The receiver's wait hits its deadline (no hang), cancels, and can keep
  // talking to healthy ranks at full speed.
  dacc::testing::MpiBed bed(3);
  bed.fabric().fail_link(0, 10'000);  // 10 us: RTS or payload in flight
  bed.run({
      [&](dmpi::Mpi& mpi, sim::Context&) {
        dmpi::Request send =
            mpi.isend(bed.comm(), 1, 7, util::Buffer::backed_zero(1_MiB));
        EXPECT_FALSE(mpi.wait_for(send, 5_ms));
        mpi.cancel(send);
      },
      [&](dmpi::Mpi& mpi, sim::Context&) {
        dmpi::Request recv = mpi.irecv(bed.comm(), 0, 7);
        EXPECT_FALSE(mpi.wait_for(recv, 5_ms));
        mpi.cancel(recv);
        // The receiver's own NIC is fine: exchange with rank 2 proceeds.
        mpi.send(bed.comm(), 2, 8, util::Buffer::backed_zero(64_KiB));
      },
      [&](dmpi::Mpi& mpi, sim::Context&) {
        const util::Buffer m = mpi.recv(bed.comm(), 1, 8);
        EXPECT_EQ(m.size(), 64_KiB);
      },
  });
}

TEST(FabricFault, PipelinedTransferTimesOutMidStream) {
  // A 64 MiB pipelined payload takes ~25 ms on the default fabric; the
  // receiver's NIC dies 5 ms in. Early blocks land, the rest are dropped,
  // and both endpoints get TransferTimeout instead of wedging.
  dacc::testing::MpiBed bed(2);
  bed.fabric().fail_link(1, 5_ms);
  const proto::TransferConfig config = proto::TransferConfig::pipeline_adaptive();
  std::uint64_t received = 0;
  bed.run({
      [&](dmpi::Mpi& mpi, sim::Context& ctx) {
        EXPECT_THROW(
            proto::send_blocks(mpi, bed.comm(), 1,
                               util::Buffer::backed_zero(64_MiB), config,
                               proto::kDataTag, ctx.now() + 40_ms),
            proto::TransferTimeout);
      },
      [&](dmpi::Mpi& mpi, sim::Context& ctx) {
        EXPECT_THROW(
            proto::recv_blocks(
                mpi, bed.comm(), 0, 64_MiB, config,
                [&](std::uint64_t, util::Buffer b) { received += b.size(); },
                proto::kDataTag, ctx.now() + 40_ms),
            proto::TransferTimeout);
      },
  });
  EXPECT_GT(received, 0u);       // the stream was cut mid-flight...
  EXPECT_LT(received, 64_MiB);   // ...not before it started or after it ended
  EXPECT_GE(bed.fabric().drops(1), 1u);
}

TEST(FabricFault, HealthyPairUnchangedByConcurrentFailure) {
  // The same rank 2 -> 3 exchange costs bit-identical simulated time with
  // and without another node's NIC dying mid-run.
  auto timed_exchange = [](bool inject) {
    dacc::testing::MpiBed bed(4);
    if (inject) bed.fabric().fail_link(0, 1'000);
    SimTime elapsed = 0;
    bed.run({
        [&](dmpi::Mpi& mpi, sim::Context&) {
          dmpi::Request r =
              mpi.isend(bed.comm(), 1, 3, util::Buffer::backed_zero(8_MiB));
          mpi.wait_for(r, 2_ms);
          mpi.cancel(r);
        },
        [&](dmpi::Mpi& mpi, sim::Context&) {
          dmpi::Request r = mpi.irecv(bed.comm(), 0, 3);
          mpi.wait_for(r, 2_ms);
          mpi.cancel(r);
        },
        [&](dmpi::Mpi& mpi, sim::Context& ctx) {
          const SimTime start = ctx.now();
          mpi.send(bed.comm(), 3, 4, util::Buffer::backed_zero(16_MiB));
          // Rendezvous: completion implies the receiver matched.
          elapsed = ctx.now() - start;
        },
        [&](dmpi::Mpi& mpi, sim::Context&) {
          (void)mpi.recv(bed.comm(), 2, 4);
        },
    });
    return elapsed;
  };
  const SimTime with_fault = timed_exchange(true);
  const SimTime without_fault = timed_exchange(false);
  EXPECT_GT(without_fault, 0u);
  EXPECT_EQ(with_fault, without_fault);
}

}  // namespace
}  // namespace dacc::net
