#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace dacc::net {
namespace {

FabricParams test_params() {
  FabricParams p;
  p.link_bandwidth_mib_s = 1000.0;  // 1 MiB takes exactly 1 ms
  p.wire_latency = 1000;            // 1 us
  p.per_message_overhead = 0;       // exact arithmetic in these tests
  return p;
}

TEST(Fabric, PerMessageOverheadAppliesAboveThreshold) {
  sim::Engine engine;
  FabricParams p = test_params();
  p.per_message_overhead = 5000;
  p.per_message_overhead_min_bytes = 4096;
  Fabric fabric(engine, 2, p);
  // Below threshold: no overhead.
  EXPECT_EQ(fabric.transfer(0, 1, 1024, 0),
            1000u + transfer_time(1024, 1000.0));
  sim::Engine engine2;
  Fabric fabric2(engine2, 2, p);
  // At/above threshold: one fixed overhead per message.
  EXPECT_EQ(fabric2.transfer(0, 1, 1_MiB, 0), 1000u + 1'000'000u + 5000u);
}

TEST(Fabric, SoloTransferCostsLatencyPlusSerialization) {
  sim::Engine engine;
  Fabric fabric(engine, 2, test_params());
  // 1 MiB at 1024 MiB/s = exactly 1 ms serialization.
  const SimTime done = fabric.transfer(0, 1, 1_MiB, 0);
  EXPECT_EQ(done, 1000u + 1'000'000u);
}

TEST(Fabric, TransferScalesLinearlyWithSize) {
  sim::Engine engine;
  Fabric fabric(engine, 2, test_params());
  const SimTime t1 = fabric.transfer(0, 1, 4_MiB, 0);
  EXPECT_EQ(t1, 1000u + 4'000'000u);
}

TEST(Fabric, SenderPortSerializesConcurrentTransfers) {
  sim::Engine engine;
  Fabric fabric(engine, 3, test_params());
  const SimTime first = fabric.transfer(0, 1, 1_MiB, 0);
  const SimTime second = fabric.transfer(0, 2, 1_MiB, 0);
  EXPECT_EQ(first, 1000u + 1'000'000u);
  // Second transfer must wait for the tx port: starts at 1 ms.
  EXPECT_EQ(second, 1'000'000u + 1000u + 1'000'000u);
}

TEST(Fabric, ReceiverPortSerializesConcurrentTransfers) {
  sim::Engine engine;
  Fabric fabric(engine, 3, test_params());
  const SimTime a = fabric.transfer(0, 2, 1_MiB, 0);
  const SimTime b = fabric.transfer(1, 2, 1_MiB, 0);
  EXPECT_EQ(a, 1000u + 1'000'000u);
  // Different senders, same receiver: rx port back-to-back.
  EXPECT_EQ(b, a + 1'000'000u);
}

TEST(Fabric, DisjointPairsDoNotInterfere) {
  sim::Engine engine;
  Fabric fabric(engine, 4, test_params());
  const SimTime a = fabric.transfer(0, 1, 1_MiB, 0);
  const SimTime b = fabric.transfer(2, 3, 1_MiB, 0);
  EXPECT_EQ(a, b);
}

TEST(Fabric, LoopbackBypassesNic) {
  sim::Engine engine;
  FabricParams p = test_params();
  p.loopback_bandwidth_mib_s = 2000.0;
  p.loopback_latency = 100;
  Fabric fabric(engine, 2, p);
  const SimTime done = fabric.transfer(0, 0, 2_MiB, 0);
  EXPECT_EQ(done, 100u + 1'000'000u);
  EXPECT_EQ(fabric.tx_busy(0), 0u);
}

TEST(Fabric, EarliestIsHonored) {
  sim::Engine engine;
  Fabric fabric(engine, 2, test_params());
  const SimTime done = fabric.transfer(0, 1, 1_MiB, 5'000'000);
  EXPECT_EQ(done, 5'000'000u + 1000u + 1'000'000u);
}

TEST(Fabric, DeliverSchedulesCallbackAtCompletion) {
  sim::Engine engine;
  Fabric fabric(engine, 2, test_params());
  SimTime fired_at = 0;
  fabric.deliver(0, 1, 1_MiB, 0, [&] { fired_at = engine.now(); });
  engine.run();
  EXPECT_EQ(fired_at, 1000u + 1'000'000u);
}

TEST(Fabric, TrafficCountersAccumulate) {
  sim::Engine engine;
  Fabric fabric(engine, 2, test_params());
  (void)fabric.transfer(0, 1, 1_MiB, 0);
  (void)fabric.transfer(0, 1, 2_MiB, 0);
  EXPECT_EQ(fabric.bytes_sent(0), 3_MiB);
  EXPECT_EQ(fabric.bytes_received(1), 3_MiB);
  EXPECT_EQ(fabric.bytes_sent(1), 0u);
  EXPECT_EQ(fabric.tx_busy(0), 3'000'000u);
}

TEST(Fabric, ZeroByteTransferCostsOnlyLatency) {
  sim::Engine engine;
  Fabric fabric(engine, 2, test_params());
  EXPECT_EQ(fabric.transfer(0, 1, 0, 0), 1000u);
}

TEST(Fabric, InvalidNodeThrows) {
  sim::Engine engine;
  Fabric fabric(engine, 2, test_params());
  EXPECT_THROW((void)fabric.transfer(0, 2, 1, 0), std::out_of_range);
  EXPECT_THROW((void)fabric.transfer(-1, 1, 1, 0), std::out_of_range);
  EXPECT_THROW(Fabric(engine, 0), std::invalid_argument);
}

// Contention shape check: two flows sharing one tx port each get half the
// effective bandwidth over a long run.
TEST(Fabric, SharedPortHalvesThroughput) {
  sim::Engine engine;
  Fabric fabric(engine, 3, test_params());
  SimTime done1 = 0;
  SimTime done2 = 0;
  for (int i = 0; i < 10; ++i) {
    done1 = fabric.transfer(0, 1, 1_MiB, 0);
    done2 = fabric.transfer(0, 2, 1_MiB, 0);
  }
  const double total_mib = 20.0;
  const double secs = to_seconds(std::max(done1, done2));
  const double agg = total_mib / secs;
  EXPECT_NEAR(agg, 1000.0, 10.0);  // aggregate ~= link rate
}

}  // namespace
}  // namespace dacc::net
