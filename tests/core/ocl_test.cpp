// The OpenCL-flavoured personality over the same middleware.
#include "core/ocl.hpp"

#include <gtest/gtest.h>

#include "rt/cluster.hpp"
#include "util/units.hpp"

namespace dacc::ocl {
namespace {

void run_cl(int accelerators, std::function<void(rt::JobContext&)> body) {
  rt::ClusterConfig c;
  c.compute_nodes = 1;
  c.accelerators = accelerators;
  rt::Cluster cluster(c);
  rt::JobSpec spec;
  spec.body = std::move(body);
  cluster.submit(spec);
  cluster.run();
}

TEST(Ocl, PlatformLeasesDevices) {
  run_cl(2, [](rt::JobContext& job) {
    Platform platform(job.session());
    auto devices = platform.get_device_ids(2);
    ASSERT_EQ(devices.size(), 2u);
    EXPECT_EQ(devices[0].name(), "Tesla C1060 (simulated)");
    // The leases are exclusive; nothing left in the pool.
    EXPECT_TRUE(platform.get_device_ids(1).empty());
  });
}

TEST(Ocl, WriteKernelReadRoundTrip) {
  run_cl(1, [](rt::JobContext& job) {
    Platform platform(job.session());
    Context context(platform.get_device_ids(1));
    CommandQueue queue = context.create_queue();

    const std::int64_t n = 1024;
    const auto bytes = static_cast<std::uint64_t>(n) * 8;
    Mem& x = context.create_buffer(bytes);
    Mem& y = context.create_buffer(bytes);

    std::vector<double> hx(static_cast<std::size_t>(n), 3.0);
    std::vector<double> hy(static_cast<std::size_t>(n), 4.0);
    queue.enqueue_write(x, util::Buffer::of<double>(
                               std::span<const double>(hx)));
    queue.enqueue_write(y, util::Buffer::of<double>(
                               std::span<const double>(hy)));

    Kernel& daxpy = context.create_kernel("daxpy");
    daxpy.set_arg(0, gpu::KernelArg{n});
    daxpy.set_arg(1, gpu::KernelArg{2.0});
    daxpy.set_arg(2, x);
    daxpy.set_arg(3, y);
    Event e = queue.enqueue_ndrange(daxpy, static_cast<std::uint64_t>(n));
    queue.finish();
    EXPECT_TRUE(e.done());

    auto out = queue.enqueue_read(y, bytes);
    for (double v : out.as<double>()) EXPECT_DOUBLE_EQ(v, 10.0);  // 4 + 2*3
  });
}

TEST(Ocl, UnknownKernelThrowsAtCreate) {
  run_cl(1, [](rt::JobContext& job) {
    Platform platform(job.session());
    Context context(platform.get_device_ids(1));
    EXPECT_THROW((void)context.create_kernel("clMagic"), core::AcError);
  });
}

TEST(Ocl, BuffersMaterializePerDevice) {
  run_cl(2, [](rt::JobContext& job) {
    Platform platform(job.session());
    Context context(platform.get_device_ids(2));
    CommandQueue q0 = context.create_queue(0);
    CommandQueue q1 = context.create_queue(1);
    Mem& buf = context.create_buffer(256);
    // Writing different contents through each queue lands on each device's
    // own allocation (OpenCL's per-device lazy materialization).
    std::vector<double> a(32, 1.0);
    std::vector<double> b(32, 2.0);
    q0.enqueue_write(buf, util::Buffer::of<double>(std::span<const double>(a)),
                     /*blocking=*/true);
    q1.enqueue_write(buf, util::Buffer::of<double>(std::span<const double>(b)),
                     true);
    EXPECT_DOUBLE_EQ(q0.enqueue_read(buf, 256).as<double>()[0], 1.0);
    EXPECT_DOUBLE_EQ(q1.enqueue_read(buf, 256).as<double>()[0], 2.0);
  });
}

TEST(Ocl, QueueOrderIsPreserved) {
  run_cl(1, [](rt::JobContext& job) {
    Platform platform(job.session());
    Context context(platform.get_device_ids(1));
    CommandQueue queue = context.create_queue();
    const std::int64_t n = 64;
    Mem& buf = context.create_buffer(static_cast<std::uint64_t>(n) * 8);

    Kernel& fill = context.create_kernel("fill_f64");
    fill.set_arg(0, buf);
    fill.set_arg(1, gpu::KernelArg{n});
    fill.set_arg(2, gpu::KernelArg{5.0});
    (void)queue.enqueue_ndrange(fill, static_cast<std::uint64_t>(n));

    Kernel& scale = context.create_kernel("dscal");
    scale.set_arg(0, gpu::KernelArg{n});
    scale.set_arg(1, gpu::KernelArg{3.0});
    scale.set_arg(2, buf);
    (void)queue.enqueue_ndrange(scale, static_cast<std::uint64_t>(n));

    auto out = queue.enqueue_read(buf, static_cast<std::uint64_t>(n) * 8);
    for (double v : out.as<double>()) EXPECT_DOUBLE_EQ(v, 15.0);
  });
}

TEST(Ocl, ValidationErrors) {
  run_cl(1, [](rt::JobContext& job) {
    Platform platform(job.session());
    Context context(platform.get_device_ids(1));
    CommandQueue queue = context.create_queue();
    Mem& small = context.create_buffer(16);
    EXPECT_THROW(
        (void)queue.enqueue_write(small, util::Buffer::backed_zero(32)),
        std::invalid_argument);
    EXPECT_THROW((void)queue.enqueue_read(small, 32),
                 std::invalid_argument);
    EXPECT_THROW(Context({}), std::invalid_argument);
  });
}

TEST(Ocl, WorksOnMicPersonality) {
  rt::ClusterConfig c;
  c.compute_nodes = 1;
  c.accelerator_devices = {gpu::mic_knc()};
  rt::Cluster cluster(c);
  rt::JobSpec spec;
  spec.body = [](rt::JobContext& job) {
    Platform platform(job.session());
    auto devices = platform.get_device_ids(1, "mic");
    ASSERT_EQ(devices.size(), 1u);
    Context context(std::move(devices));
    CommandQueue queue = context.create_queue();
    Mem& buf = context.create_buffer(64);
    queue.enqueue_write(buf, util::Buffer::backed_zero(64), true);
    EXPECT_EQ(queue.enqueue_read(buf, 64).size(), 64u);
  };
  cluster.submit(spec);
  cluster.run();
}

}  // namespace
}  // namespace dacc::ocl
