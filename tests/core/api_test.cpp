// End-to-end tests of the public ac* API through the full stack:
// Session -> proxy -> wire protocol -> daemon -> simulated GPU.
#include "core/api.hpp"

#include <gtest/gtest.h>

#include "rt/cluster.hpp"
#include "util/units.hpp"

namespace dacc::core {
namespace {

void run_job(rt::ClusterConfig config, std::uint32_t static_acs,
             std::function<void(rt::JobContext&)> body) {
  rt::Cluster cluster(std::move(config));
  rt::JobSpec spec;
  spec.accelerators_per_rank = static_acs;
  spec.body = std::move(body);
  cluster.submit(spec);
  cluster.run();
}

rt::ClusterConfig one_cn_two_acs() {
  rt::ClusterConfig c;
  c.compute_nodes = 1;
  c.accelerators = 2;
  return c;
}

TEST(Api, StaticAssignmentProvidesAccelerators) {
  run_job(one_cn_two_acs(), 2, [](rt::JobContext& job) {
    EXPECT_EQ(job.session().size(), 2u);
    EXPECT_NE(job.session()[0].daemon_rank(),
              job.session()[1].daemon_rank());
  });
}

TEST(Api, ListingTwoSequenceEndToEnd) {
  // The paper's Listing 2, verbatim through the public API.
  run_job(one_cn_two_acs(), 1, [](rt::JobContext& job) {
    Accelerator& ac = job.session()[0];
    const std::int64_t n = 300;
    const auto bytes = static_cast<std::uint64_t>(n) * 8;

    const gpu::DevPtr dx = ac.mem_alloc(bytes);      // acMemAlloc
    std::vector<double> x(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<double>(i);
    }
    ac.memcpy_h2d(dx, util::Buffer::of<double>(      // acMemCpy
                          std::span<const double>(x)));
    Kernel k = ac.kernel_create("dscal");            // acKernelCreate
    k.set_args({n, 3.0, dx});                        // acKernelSetArgs
    k.run();                                         // acKernelRun
    auto out = ac.memcpy_d2h(dx, bytes);             // acMemCpy
    ac.mem_free(dx);                                 // acMemFree

    auto view = out.as<double>();
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_DOUBLE_EQ(view[i], 3.0 * static_cast<double>(i));
    }
  });
}

TEST(Api, DynamicAcquireRelease) {
  run_job(one_cn_two_acs(), 0, [](rt::JobContext& job) {
    Session& session = job.session();
    EXPECT_EQ(session.size(), 0u);
    auto accs = session.acquire(2);
    ASSERT_EQ(accs.size(), 2u);
    EXPECT_EQ(session.arm().stats().free, 0u);
    session.release(accs[0]);
    EXPECT_EQ(session.arm().stats().free, 1u);
    EXPECT_EQ(session.size(), 1u);
  });
}

TEST(Api, AcquireFailureYieldsEmpty) {
  run_job(one_cn_two_acs(), 0, [](rt::JobContext& job) {
    EXPECT_TRUE(job.session().acquire(5).empty());
  });
}

TEST(Api, SessionCloseReturnsLeases) {
  rt::Cluster cluster(one_cn_two_acs());
  rt::JobSpec spec;
  spec.accelerators_per_rank = 2;
  spec.body = [](rt::JobContext&) { /* hold and exit */ };
  cluster.submit(spec);
  cluster.run();
  // After the job finished, everything is free again.
  EXPECT_EQ(cluster.arm().stats().free, 2u);
}

TEST(Api, AllocationFailureThrowsAcError) {
  run_job(one_cn_two_acs(), 1, [](rt::JobContext& job) {
    try {
      (void)job.session()[0].mem_alloc(1ull << 60);
      FAIL() << "expected AcError";
    } catch (const AcError& e) {
      EXPECT_EQ(e.code(), gpu::Result::kOutOfMemory);
    }
  });
}

TEST(Api, UnknownKernelThrowsOnCreate) {
  run_job(one_cn_two_acs(), 1, [](rt::JobContext& job) {
    EXPECT_THROW((void)job.session()[0].kernel_create("missing"), AcError);
  });
}

TEST(Api, DeviceInfoReportsSimulatedC1060) {
  run_job(one_cn_two_acs(), 1, [](rt::JobContext& job) {
    const DeviceInfo info = job.session()[0].info();
    EXPECT_EQ(info.name, "Tesla C1060 (simulated)");
    EXPECT_EQ(info.memory_bytes, info.memory_free);
  });
}

TEST(Api, AsyncOpsOverlapAcrossAccelerators) {
  // Two H2D copies to two different accelerators finish in about the time
  // of one (the CN tx port is shared, so not exactly half — but far less
  // than serial).
  rt::ClusterConfig config = one_cn_two_acs();
  config.functional_gpus = false;
  run_job(config, 2, [](rt::JobContext& job) {
    Accelerator& a = job.session()[0];
    Accelerator& b = job.session()[1];
    const std::uint64_t bytes = 16_MiB;
    const gpu::DevPtr da = a.mem_alloc(bytes);
    const gpu::DevPtr db = b.mem_alloc(bytes);

    // Serial reference.
    const SimTime t0 = job.ctx().now();
    a.memcpy_h2d(da, util::Buffer::phantom(bytes));
    b.memcpy_h2d(db, util::Buffer::phantom(bytes));
    const SimDuration serial = job.ctx().now() - t0;

    // Overlapped.
    const SimTime t1 = job.ctx().now();
    Future fa = a.memcpy_h2d_async(da, util::Buffer::phantom(bytes));
    Future fb = b.memcpy_h2d_async(db, util::Buffer::phantom(bytes));
    fa.get(job.ctx());
    fb.get(job.ctx());
    const SimDuration overlapped = job.ctx().now() - t1;

    EXPECT_LT(overlapped, serial);
  });
}

TEST(Api, AsyncOpsToOneAcceleratorStayOrdered) {
  run_job(one_cn_two_acs(), 1, [](rt::JobContext& job) {
    Accelerator& ac = job.session()[0];
    const std::int64_t n = 64;
    const gpu::DevPtr p = ac.mem_alloc(static_cast<std::uint64_t>(n) * 8);
    // fill(1), scale(*2), add self => 4.0; only correct if ordered.
    Future f1 = ac.launch_async("fill_f64", {}, {p, n, 1.0});
    Future f2 = ac.launch_async("dscal", {}, {n, 2.0, p});
    Future f3 = ac.launch_async("vector_add_f64", {}, {p, p, p, n});
    f3.get(job.ctx());
    EXPECT_TRUE(f1.done());
    EXPECT_TRUE(f2.done());
    auto out = ac.memcpy_d2h(p, static_cast<std::uint64_t>(n) * 8);
    for (double v : out.as<double>()) EXPECT_DOUBLE_EQ(v, 4.0);
  });
}

TEST(Api, PeerCopyMovesDataAccelerartorToAccelerator) {
  run_job(one_cn_two_acs(), 2, [](rt::JobContext& job) {
    Accelerator& a = job.session()[0];
    Accelerator& b = job.session()[1];
    const std::int64_t n = 1024;
    const auto bytes = static_cast<std::uint64_t>(n) * 8;
    const gpu::DevPtr da = a.mem_alloc(bytes);
    const gpu::DevPtr db = b.mem_alloc(bytes);
    a.launch("fill_f64", {}, {da, n, 5.5});
    a.copy_to_peer(da, b, db, bytes);
    auto out = b.memcpy_d2h(db, bytes);
    for (double v : out.as<double>()) EXPECT_DOUBLE_EQ(v, 5.5);
  });
}

TEST(Api, PeerCopyDoesNotTouchComputeNodeNic) {
  rt::ClusterConfig config = one_cn_two_acs();
  config.functional_gpus = false;
  rt::Cluster cluster(config);
  rt::JobSpec spec;
  spec.accelerators_per_rank = 2;
  spec.body = [&](rt::JobContext& job) {
    Accelerator& a = job.session()[0];
    Accelerator& b = job.session()[1];
    const std::uint64_t bytes = 8_MiB;
    const gpu::DevPtr da = a.mem_alloc(bytes);
    const gpu::DevPtr db = b.mem_alloc(bytes);
    const std::uint64_t cn_sent_before = job.cluster().fabric().bytes_sent(0);
    a.copy_to_peer(da, b, db, bytes);
    const std::uint64_t cn_sent_after = job.cluster().fabric().bytes_sent(0);
    // Only the small request/response control traffic crosses the CN NIC.
    EXPECT_LT(cn_sent_after - cn_sent_before, 64_KiB);
  };
  cluster.submit(spec);
  cluster.run();
  // The bulk went daemon-to-daemon.
  EXPECT_GE(cluster.fabric().bytes_sent(cluster.daemon_rank(0)), 8_MiB);
}

TEST(Api, UseAfterReleaseThrows) {
  run_job(one_cn_two_acs(), 0, [](rt::JobContext& job) {
    auto accs = job.session().acquire(1);
    ASSERT_EQ(accs.size(), 1u);
    Accelerator* ac = accs[0];
    const gpu::DevPtr p = ac->mem_alloc(64);
    (void)p;
    job.session().release(ac);
    // The pointer is dangling by contract; a fresh acquire gives a new one.
    auto again = job.session().acquire(1);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_NO_THROW((void)again[0]->mem_alloc(64));
  });
}

TEST(Api, BrokenAcceleratorSurfacesEccAndCanBeReported) {
  rt::ClusterConfig config = one_cn_two_acs();
  rt::Cluster cluster(config);
  cluster.break_accelerator(0, 1_ms);
  rt::JobSpec spec;
  spec.accelerators_per_rank = 2;
  spec.body = [&](rt::JobContext& job) {
    Accelerator& a = job.session()[0];  // leases are granted in pool order
    Accelerator& b = job.session()[1];
    job.ctx().wait_for(2_ms);  // let the fault fire
    bool hit_ecc = false;
    try {
      (void)a.mem_alloc(64);
    } catch (const AcError& e) {
      hit_ecc = e.code() == gpu::Result::kEccError;
    }
    EXPECT_TRUE(hit_ecc);
    // The CN itself is fine: work continues on the healthy accelerator.
    EXPECT_NO_THROW((void)b.mem_alloc(64));
    EXPECT_EQ(job.session().arm().report_broken(a.daemon_rank()),
              arm::ArmResult::kOk);
    EXPECT_EQ(job.session().arm().stats().broken, 1u);
  };
  cluster.submit(spec);
  cluster.run();
}

}  // namespace
}  // namespace dacc::core
