// Full-stack data-integrity sweep: every byte written through the public
// ac* API must come back bit-exact through every transfer configuration —
// the end-to-end guarantee all the bandwidth engineering must not break.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "rt/cluster.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dacc::core {
namespace {

struct Case {
  proto::TransferConfig config;
  std::uint64_t bytes;
  const char* name;
};

class IntegrityP : public ::testing::TestWithParam<Case> {};

TEST_P(IntegrityP, RoundTripsBitExact) {
  const Case& c = GetParam();
  rt::ClusterConfig cc;
  cc.compute_nodes = 1;
  cc.accelerators = 1;
  rt::Cluster cluster(cc);
  rt::JobSpec spec;
  spec.accelerators_per_rank = 1;
  spec.body = [&](rt::JobContext& job) {
    Accelerator& ac = job.session()[0];
    ac.set_transfer_config(c.config);
    util::Rng rng(c.bytes ^ 0xbeef);
    std::vector<std::byte> payload(c.bytes);
    for (auto& b : payload) {
      b = static_cast<std::byte>(rng.next_below(256));
    }
    const gpu::DevPtr p = ac.mem_alloc(c.bytes);
    ac.memcpy_h2d(p, util::Buffer::backed(std::vector<std::byte>(payload)));
    util::Buffer out = ac.memcpy_d2h(p, c.bytes);
    ASSERT_EQ(out.size(), c.bytes);
    EXPECT_TRUE(
        std::equal(payload.begin(), payload.end(), out.bytes().begin()));
    // Partial-range readback through pointer arithmetic too.
    if (c.bytes >= 4096) {
      util::Buffer mid = ac.memcpy_d2h(p + 1024, 2048);
      EXPECT_TRUE(std::equal(payload.begin() + 1024,
                             payload.begin() + 1024 + 2048,
                             mid.bytes().begin()));
    }
    ac.mem_free(p);
  };
  cluster.submit(spec);
  cluster.run();
}

std::vector<Case> cases() {
  std::vector<Case> out;
  struct Config {
    proto::TransferConfig config;
    const char* name;
  };
  std::vector<Config> configs = {
      {proto::TransferConfig::naive(), "naive"},
      {proto::TransferConfig::pipeline(64_KiB), "p64K"},
      {proto::TransferConfig::pipeline(128_KiB), "p128K"},
      {proto::TransferConfig::pipeline_adaptive(), "adaptive"},
  };
  auto no_gd = proto::TransferConfig::pipeline(128_KiB);
  no_gd.gpudirect = false;
  configs.push_back({no_gd, "p128K_nogd"});
  for (const Config& c : configs) {
    for (const std::uint64_t bytes :
         {std::uint64_t{1}, std::uint64_t{4095}, 64_KiB + 1, 1_MiB}) {
      out.push_back(Case{c.config, bytes, c.name});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntegrityP, ::testing::ValuesIn(cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(info.param.name) + "_" +
             std::to_string(info.param.bytes) + "B";
    });

}  // namespace
}  // namespace dacc::core
