// Bandwidth-shape checks for remote memcpy through the full middleware —
// the properties behind paper Figures 5-8, asserted qualitatively here (the
// benches print the full curves).
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

namespace dacc::core {
namespace {

struct Measurement {
  double h2d_mib_s = 0.0;
  double d2h_mib_s = 0.0;
};

Measurement measure(std::uint64_t bytes, proto::TransferConfig config) {
  rt::ClusterConfig cc;
  cc.compute_nodes = 1;
  cc.accelerators = 1;
  cc.functional_gpus = false;
  rt::Cluster cluster(cc);
  Measurement m;
  rt::JobSpec spec;
  spec.accelerators_per_rank = 1;
  spec.body = [&](rt::JobContext& job) {
    Accelerator& ac = job.session()[0];
    ac.set_transfer_config(config);
    const gpu::DevPtr p = ac.mem_alloc(bytes);
    // Warm-up, then timed.
    ac.memcpy_h2d(p, util::Buffer::phantom(bytes));
    SimTime t0 = job.ctx().now();
    ac.memcpy_h2d(p, util::Buffer::phantom(bytes));
    m.h2d_mib_s = mib_per_s(bytes, job.ctx().now() - t0);
    t0 = job.ctx().now();
    (void)ac.memcpy_d2h(p, bytes);
    m.d2h_mib_s = mib_per_s(bytes, job.ctx().now() - t0);
  };
  cluster.submit(spec);
  cluster.run();
  return m;
}

TEST(Bandwidth, PipelineBeatsNaiveForLargeMessages) {
  const auto naive = measure(64_MiB, proto::TransferConfig::naive());
  const auto pipe = measure(64_MiB, proto::TransferConfig::pipeline(512_KiB));
  EXPECT_GT(pipe.h2d_mib_s, naive.h2d_mib_s * 1.2);
  EXPECT_GT(pipe.d2h_mib_s, naive.d2h_mib_s * 1.2);
}

TEST(Bandwidth, PipelineApproachesMpiBound) {
  // Paper Section V.A: "memory copy operations can now achieve bandwidth
  // results similar to MPI data transfers of the same size".
  const auto m = measure(64_MiB, proto::TransferConfig::pipeline_adaptive());
  EXPECT_GT(m.h2d_mib_s, 2300.0);
  EXPECT_LT(m.h2d_mib_s, 2700.0);
  EXPECT_GT(m.d2h_mib_s, 2300.0);
}

TEST(Bandwidth, SmallBlocksWinSmallMessages) {
  // Paper: 128 KiB blocks beat 512 KiB for 0.5-8 MiB messages...
  const auto small128 = measure(2_MiB, proto::TransferConfig::pipeline(128_KiB));
  const auto small512 = measure(2_MiB, proto::TransferConfig::pipeline(512_KiB));
  EXPECT_GT(small128.h2d_mib_s, small512.h2d_mib_s);
}

TEST(Bandwidth, LargeBlocksWinLargeMessages) {
  // ...while 512 KiB wins above ~9 MiB.
  const auto large128 = measure(64_MiB, proto::TransferConfig::pipeline(128_KiB));
  const auto large512 = measure(64_MiB, proto::TransferConfig::pipeline(512_KiB));
  EXPECT_GT(large512.h2d_mib_s, large128.h2d_mib_s);
}

TEST(Bandwidth, AdaptivePolicyTracksTheBestFixedBlock) {
  for (const std::uint64_t bytes : {2_MiB, 64_MiB}) {
    const auto adaptive =
        measure(bytes, proto::TransferConfig::pipeline_adaptive());
    const auto b128 = measure(bytes, proto::TransferConfig::pipeline(128_KiB));
    const auto b512 = measure(bytes, proto::TransferConfig::pipeline(512_KiB));
    const double best = std::max(b128.h2d_mib_s, b512.h2d_mib_s);
    EXPECT_GE(adaptive.h2d_mib_s, best * 0.99);
  }
}

TEST(Bandwidth, GpuDirectRemovesStagingCopyCost) {
  auto with = proto::TransferConfig::pipeline(128_KiB);
  auto without = with;
  without.gpudirect = false;
  const auto m_with = measure(32_MiB, with);
  const auto m_without = measure(32_MiB, without);
  EXPECT_GT(m_with.h2d_mib_s, m_without.h2d_mib_s * 1.05);
}

TEST(Bandwidth, RemoteIsSlowerThanLocalPinned) {
  // Paper Fig. 7: node-local pinned ~5700 MiB/s vs remote ~2600 MiB/s.
  const auto remote = measure(64_MiB, proto::TransferConfig::pipeline_adaptive());
  EXPECT_LT(remote.h2d_mib_s, 3000.0);  // well under the local 5700
}

TEST(Bandwidth, SmallRemoteCopyLatencyIsMicroseconds) {
  rt::ClusterConfig cc;
  cc.compute_nodes = 1;
  cc.accelerators = 1;
  rt::Cluster cluster(cc);
  SimDuration elapsed = 0;
  rt::JobSpec spec;
  spec.accelerators_per_rank = 1;
  spec.body = [&](rt::JobContext& job) {
    Accelerator& ac = job.session()[0];
    const gpu::DevPtr p = ac.mem_alloc(64);
    const SimTime t0 = job.ctx().now();
    ac.memcpy_h2d(p, util::Buffer::backed_zero(64));
    elapsed = job.ctx().now() - t0;
  };
  cluster.submit(spec);
  cluster.run();
  // Request + 64 B eager payload + DMA + response: order 30-60 us.
  EXPECT_LT(to_us(elapsed), 100.0);
  EXPECT_GT(to_us(elapsed), 5.0);
}

}  // namespace
}  // namespace dacc::core
