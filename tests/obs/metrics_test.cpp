// Unit tests for the dacc::obs metrics registry: handle semantics, snapshot
// reads, exporter formats, and registration-order independence.
#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/metrics.hpp"

namespace dacc::obs {
namespace {

TEST(Metrics, CounterAddsAndReads) {
  Registry reg;
  Counter c = reg.counter("dacc_test_events_total");
  c.add();
  c.add(41);
  EXPECT_EQ(reg.counter_value("dacc_test_events_total"), 42u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, GaugeSetAndAdd) {
  Registry reg;
  Gauge g = reg.gauge("dacc_test_depth");
  g.set(7);
  EXPECT_EQ(reg.gauge_value("dacc_test_depth"), 7);
  g.add(-10);
  EXPECT_EQ(reg.gauge_value("dacc_test_depth"), -3);
}

TEST(Metrics, HistogramBucketsCountAndSum) {
  Registry reg;
  Histogram h = reg.histogram("dacc_test_latency_ns", {10, 100, 1000});
  h.observe(5);     // le=10
  h.observe(10);    // le=10 (bounds are inclusive upper bounds)
  h.observe(500);   // le=1000
  h.observe(5000);  // +Inf overflow
  EXPECT_EQ(reg.histogram_count("dacc_test_latency_ns"), 4u);
  EXPECT_EQ(reg.histogram_sum("dacc_test_latency_ns"), 5515u);
}

TEST(Metrics, GetOrCreateReturnsSameMetric) {
  Registry reg;
  Counter a = reg.counter("dacc_test_total");
  Counter b = reg.counter("dacc_test_total");
  a.add(1);
  b.add(2);
  EXPECT_EQ(reg.counter_value("dacc_test_total"), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, KindMismatchThrows) {
  Registry reg;
  (void)reg.counter("dacc_test_total");
  EXPECT_THROW((void)reg.gauge("dacc_test_total"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("dacc_test_total", {1}),
               std::invalid_argument);
  (void)reg.histogram("dacc_test_hist", {1, 2});
  EXPECT_THROW((void)reg.histogram("dacc_test_hist", {1, 3}),
               std::invalid_argument);
  // Same bounds re-register fine.
  (void)reg.histogram("dacc_test_hist", {1, 2});
}

TEST(Metrics, BadHistogramBoundsThrow) {
  Registry reg;
  EXPECT_THROW((void)reg.histogram("dacc_test_empty", {}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("dacc_test_unsorted", {10, 5}),
               std::invalid_argument);
}

TEST(Metrics, DefaultHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  c.add(5);
  g.set(5);
  h.observe(5);  // must not crash; nothing to record into
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_FALSE(static_cast<bool>(g));
  EXPECT_FALSE(static_cast<bool>(h));
}

TEST(Metrics, MissingNamesReadAsZero) {
  Registry reg;
  EXPECT_EQ(reg.counter_value("nope"), 0u);
  EXPECT_EQ(reg.gauge_value("nope"), 0);
  EXPECT_EQ(reg.histogram_count("nope"), 0u);
  // Kind-mismatched reads are also zero, not garbage.
  (void)reg.gauge("dacc_test_depth");
  EXPECT_EQ(reg.counter_value("dacc_test_depth"), 0u);
}

TEST(Metrics, JsonExporterFormat) {
  Registry reg;
  reg.counter("b_total").add(3);
  reg.gauge("a_depth").set(-2);
  Histogram h = reg.histogram("c_ns", {10, 100});
  h.observe(7);
  h.observe(250);
  // Sorted by name; buckets cumulative with a closing +Inf.
  EXPECT_EQ(reg.json(),
            "{\"metrics\":["
            "{\"name\":\"a_depth\",\"type\":\"gauge\",\"value\":-2},"
            "{\"name\":\"b_total\",\"type\":\"counter\",\"value\":3},"
            "{\"name\":\"c_ns\",\"type\":\"histogram\",\"count\":2,"
            "\"sum\":257,\"buckets\":[{\"le\":10,\"count\":1},"
            "{\"le\":100,\"count\":1},{\"le\":\"+Inf\",\"count\":2}]}"
            "]}\n");
}

TEST(Metrics, PrometheusExporterFormat) {
  Registry reg;
  reg.counter("dacc_msgs_total{rank=\"1\"}").add(5);
  reg.counter("dacc_msgs_total{rank=\"0\"}").add(2);
  Histogram h = reg.histogram("dacc_wait_ns{op=\"h2d\"}", {100});
  h.observe(50);
  h.observe(500);
  EXPECT_EQ(reg.prometheus(),
            "# TYPE dacc_msgs_total counter\n"
            "dacc_msgs_total{rank=\"0\"} 2\n"
            "dacc_msgs_total{rank=\"1\"} 5\n"
            "# TYPE dacc_wait_ns histogram\n"
            "dacc_wait_ns_bucket{op=\"h2d\",le=\"100\"} 1\n"
            "dacc_wait_ns_bucket{op=\"h2d\",le=\"+Inf\"} 2\n"
            "dacc_wait_ns_sum{op=\"h2d\"} 550\n"
            "dacc_wait_ns_count{op=\"h2d\"} 2\n");
}

TEST(Metrics, ExportIndependentOfRegistrationOrder) {
  Registry fwd;
  Registry rev;
  fwd.counter("a_total").add(1);
  fwd.gauge("b_depth").set(2);
  rev.gauge("b_depth").set(2);
  rev.counter("a_total").add(1);
  EXPECT_EQ(fwd.json(), rev.json());
  EXPECT_EQ(fwd.prometheus(), rev.prometheus());
}

TEST(Metrics, ResetClearsValuesKeepsHandles) {
  Registry reg;
  Counter c = reg.counter("a_total");
  Histogram h = reg.histogram("b_ns", {10});
  c.add(9);
  h.observe(3);
  reg.reset();
  EXPECT_EQ(reg.counter_value("a_total"), 0u);
  EXPECT_EQ(reg.histogram_count("b_ns"), 0u);
  c.add(1);  // handles stay bound after reset
  h.observe(4);
  EXPECT_EQ(reg.counter_value("a_total"), 1u);
  EXPECT_EQ(reg.histogram_sum("b_ns"), 4u);
}

TEST(Metrics, LatencyBoundsAreAscendingDecades) {
  const auto bounds = latency_bounds_ns();
  ASSERT_EQ(bounds.size(), 7u);
  EXPECT_EQ(bounds.front(), 1'000u);
  EXPECT_EQ(bounds.back(), 1'000'000'000u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_EQ(bounds[i], bounds[i - 1] * 10);
  }
}

}  // namespace
}  // namespace dacc::obs
