// Cross-backend determinism of the observability layer (the tier-1 gate for
// dacc::obs): a figure-9-style workload — static leases, bulk copies,
// kernels, dynamic acquire/release, heartbeats — run with metrics and
// tracing attached must produce byte-identical metrics snapshots (JSON and
// Prometheus text) under the coroutine, thread, and parallel:4 execution
// backends, and the causal trace must stitch a front-end op to its NIC and
// daemon child spans with Chrome flow events.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "rt/cluster.hpp"
#include "sim/trace.hpp"
#include "util/units.hpp"

namespace dacc {
namespace {

struct RunOut {
  std::string metrics_json;
  std::string metrics_prom;
  std::string shard_prom;  ///< parallel-only per-shard era series
  std::vector<sim::Tracer::Span> spans;
  std::string chrome;
  SimTime end = 0;
};

RunOut run_workload(sim::ExecBackend backend, int shards = 0) {
  rt::ClusterConfig config;
  config.compute_nodes = 2;
  config.accelerators = 3;
  config.functional_gpus = false;  // phantom devices: timing only
  config.metrics = true;
  config.trace = true;
  config.heartbeat.enabled = true;
  config.sim_backend = backend;
  config.sim_shards = shards;
  rt::Cluster cluster(config);

  rt::JobSpec job;
  job.name = "metered-qr";
  job.ranks = 2;
  job.accelerators_per_rank = 1;
  job.body = [](rt::JobContext& ctx) {
    core::Accelerator& ac = ctx.session()[0];
    const gpu::DevPtr p = ac.mem_alloc(4_MiB);
    ac.memcpy_h2d(p, util::Buffer::phantom(4_MiB));
    ac.launch("dscal", {}, {std::int64_t{1 << 19}, 1.5, p});
    (void)ac.memcpy_d2h(p, 4_MiB);
    if (ctx.rank() == 0) {
      // Dynamic assignment exercises the ARM queue + assign-wait metric.
      auto extra = ctx.session().acquire(1, /*wait=*/true);
      ASSERT_EQ(extra.size(), 1u);
      const gpu::DevPtr q = extra[0]->mem_alloc(1_MiB);
      extra[0]->memcpy_h2d(q, util::Buffer::phantom(1_MiB));
      ctx.session().release(extra[0]);
    }
    // App-level MPI so the dmpi counters see non-middleware traffic too.
    const int peer = 1 - ctx.rank();
    if (ctx.rank() == 0) {
      ctx.mpi().send(ctx.job_comm(), peer, 3, util::Buffer::phantom(64_KiB));
    } else {
      (void)ctx.mpi().recv(ctx.job_comm(), peer, 3);
    }
  };
  cluster.submit(job);
  cluster.run();

  RunOut out;
  // The backend-invariant snapshot excludes the parallel backend's
  // per-shard era series (dacc_sim_shard_*): those describe scheduling,
  // which legitimately depends on the shard map, and are captured
  // separately below for the replay-identity check.
  out.metrics_json =
      cluster.metrics().json(obs::Registry::kShardSeriesPrefix, false);
  out.metrics_prom =
      cluster.metrics().prometheus(obs::Registry::kShardSeriesPrefix, false);
  out.shard_prom =
      cluster.metrics().prometheus(obs::Registry::kShardSeriesPrefix, true);
  out.spans = cluster.tracer().spans();
  std::ostringstream chrome;
  cluster.tracer().write_chrome_json(chrome);
  out.chrome = chrome.str();
  out.end = cluster.engine().now();
  return out;
}

TEST(ObsDeterminism, MetricsSnapshotIdenticalAcrossBackends) {
  const RunOut coro = run_workload(sim::ExecBackend::kCoroutine);
  const RunOut thread = run_workload(sim::ExecBackend::kThread);
  const RunOut par = run_workload(sim::ExecBackend::kParallel, /*shards=*/4);

  ASSERT_FALSE(coro.metrics_json.empty());
  EXPECT_EQ(coro.metrics_json, thread.metrics_json);
  EXPECT_EQ(coro.metrics_json, par.metrics_json);
  EXPECT_EQ(coro.metrics_prom, thread.metrics_prom);
  EXPECT_EQ(coro.metrics_prom, par.metrics_prom);
  // The simulation itself agreed, not just the formatting.
  EXPECT_EQ(coro.end, thread.end);
  EXPECT_EQ(coro.end, par.end);

  // The sequential backends register no shard series; the parallel run
  // does, and they are deterministic: a replay with the same shard count
  // reproduces them byte for byte (era structure is schedule-independent).
  EXPECT_TRUE(coro.shard_prom.empty());
  EXPECT_TRUE(thread.shard_prom.empty());
  EXPECT_NE(par.shard_prom.find("dacc_sim_shard_windows_total"),
            std::string::npos);
  EXPECT_NE(par.shard_prom.find("dacc_sim_shard_inbox_batch"),
            std::string::npos);
  const RunOut replay = run_workload(sim::ExecBackend::kParallel, 4);
  EXPECT_EQ(par.shard_prom, replay.shard_prom);
  EXPECT_EQ(par.metrics_json, replay.metrics_json);

  // The full stack actually reported in: one family per instrumented layer.
  for (const char* family :
       {"dacc_dmpi_msgs_total", "dacc_net_tx_bytes_total",
        "dacc_daemon_requests_total", "dacc_fe_op_latency_ns",
        "dacc_arm_assigned", "dacc_arm_assign_wait_ns",
        "dacc_arm_heartbeat_latency_ns"}) {
    EXPECT_NE(coro.metrics_prom.find(family), std::string::npos)
        << "missing metric family " << family;
  }
}

TEST(ObsDeterminism, FlowLinksFrontEndOpToNicAndDaemonSpans) {
  const RunOut run = run_workload(sim::ExecBackend::kCoroutine);

  // Root span: the front-end h2d proxy op on rank 0.
  const sim::Tracer::Span* fe = nullptr;
  for (const auto& s : run.spans) {
    if (s.track.rfind("fe-r0-", 0) == 0 && s.name.rfind("h2d", 0) == 0) {
      fe = &s;
      break;
    }
  }
  ASSERT_NE(fe, nullptr) << "no front-end h2d span recorded";
  EXPECT_NE(fe->trace_id, 0u);
  EXPECT_EQ(fe->span_id, fe->trace_id);  // root span doubles as the trace id
  EXPECT_EQ(fe->parent_id, 0u);

  // Children: the request's NIC transmit and the daemon's execution span
  // both name the front-end op as parent; the daemon's reply traffic names
  // the daemon span. That is the end-to-end chain the flow arrows draw.
  const sim::Tracer::Span* nic_child = nullptr;
  const sim::Tracer::Span* daemon_child = nullptr;
  for (const auto& s : run.spans) {
    if (s.trace_id != fe->trace_id || s.parent_id != fe->span_id) continue;
    if (s.track.rfind("nic-", 0) == 0 && nic_child == nullptr) nic_child = &s;
    if (s.track.rfind("daemon-", 0) == 0 && daemon_child == nullptr) {
      daemon_child = &s;
    }
  }
  ASSERT_NE(nic_child, nullptr) << "no NIC span parented to the FE op";
  ASSERT_NE(daemon_child, nullptr) << "no daemon span parented to the FE op";
  EXPECT_GE(daemon_child->begin, fe->begin);
  EXPECT_LE(daemon_child->end, fe->end);

  bool reply_leg = false;
  for (const auto& s : run.spans) {
    if (s.trace_id == fe->trace_id && s.parent_id == daemon_child->span_id) {
      reply_leg = true;
      break;
    }
  }
  EXPECT_TRUE(reply_leg) << "no span parented to the daemon execution";

  // The Chrome export stitches the chain with flow events and carries the
  // causal ids in args.
  EXPECT_NE(run.chrome.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_NE(run.chrome.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(run.chrome.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(run.chrome.find("\"trace\":" + std::to_string(fe->trace_id)),
            std::string::npos);
}

TEST(ObsDeterminism, MetricsOffByDefaultRecordsNothing) {
  rt::ClusterConfig config;
  config.compute_nodes = 1;
  config.accelerators = 1;
  config.functional_gpus = false;
  rt::Cluster cluster(config);
  rt::JobSpec job;
  job.accelerators_per_rank = 1;
  job.body = [](rt::JobContext& ctx) {
    core::Accelerator& ac = ctx.session()[0];
    const gpu::DevPtr p = ac.mem_alloc(1_MiB);
    ac.memcpy_h2d(p, util::Buffer::phantom(1_MiB));
  };
  cluster.submit(job);
  cluster.run();
  EXPECT_EQ(cluster.metrics().size(), 0u);
  EXPECT_EQ(cluster.metrics().json(), "{\"metrics\":[]}\n");
}

}  // namespace
}  // namespace dacc
