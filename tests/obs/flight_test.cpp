// Flight recorder (DESIGN.md §9.2): a fixed-size ring of rare control-plane
// events — revocations, elections, failovers, wire errors, chaos faults —
// dumped for post-mortems. The ring must overwrite oldest-first, replay in
// causal order, capture a seeded leader-kill chaos run and an injected link
// fault, and write its dump to disk automatically when a fault was injected.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/chaos.hpp"
#include "common/testbed.hpp"
#include "core/api.hpp"
#include "obs/flight.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

namespace dacc::obs {
namespace {

using dacc::testing::ChaosSchedule;
using dacc::testing::replicated_cluster;

// ---------------------------------------------------------------------------
// Ring semantics
// ---------------------------------------------------------------------------

TEST(FlightRing, OverwritesOldestWhenFull) {
  FlightRecorder fr(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    fr.note(static_cast<SimTime>(i), "test", "event-" + std::to_string(i));
  }
  EXPECT_EQ(fr.recorded(), 10u);
  const std::vector<FlightRecorder::Event> events = fr.events();
  ASSERT_EQ(events.size(), 4u);
  // Only the newest four survive.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].what, "event-" + std::to_string(6 + i));
  }
  fr.clear();
  EXPECT_TRUE(fr.events().empty());
  EXPECT_EQ(fr.recorded(), 0u);
}

TEST(FlightRing, ReplaysInCausalOrder) {
  FlightRecorder fr;
  // Noted out of order (as concurrent shards would): replay sorts by
  // simulated time, sequence number breaking ties.
  fr.note(30, "c", "third");
  fr.note(10, "a", "first");
  fr.note(20, "b", "second");
  fr.note(20, "b", "second-bis");
  const std::vector<FlightRecorder::Event> events = fr.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].what, "first");
  EXPECT_EQ(events[1].what, "second");
  EXPECT_EQ(events[2].what, "second-bis");
  EXPECT_EQ(events[3].what, "third");
  std::uint64_t prev_seq = 0;
  SimTime prev_time = 0;
  for (const auto& e : events) {
    EXPECT_TRUE(e.time > prev_time || (e.time == prev_time && e.seq > prev_seq) ||
                &e == &events.front());
    prev_time = e.time;
    prev_seq = e.seq;
  }
}

TEST(FlightRing, DumpNamesCoverageAndCarriesTraceIds) {
  FlightRecorder fr(/*capacity=*/8);
  fr.note(1'000, "fe", "retry ladder exhausted", /*trace_id=*/0xabcd);
  for (int i = 0; i < 12; ++i) fr.note(2'000 + i, "noise", "filler");
  const std::string dump = fr.dump();
  EXPECT_NE(dump.find("8 of 13 events (capacity 8)"), std::string::npos)
      << dump;
  // The overwritten head is gone; the survivors carry their ids.
  EXPECT_EQ(dump.find("retry ladder"), std::string::npos);
  EXPECT_NE(dump.find("[noise] filler"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Seeded leader-kill chaos run
// ---------------------------------------------------------------------------

TEST(FlightChaos, LeaderKillRunProducesAPostMortem) {
  rt::ClusterConfig config = replicated_cluster(/*cns=*/1, /*acs=*/2);
  config.functional_gpus = false;
  rt::Cluster cluster(config);
  const dacc::testing::FlightOnFailure post_mortem(cluster);
  ChaosSchedule::leader_kills(/*seed=*/11, /*count=*/1, 1_ms, 3_ms, 1_ms)
      .arm(cluster);

  rt::JobSpec job;
  job.accelerators_per_rank = 1;
  job.body = [](rt::JobContext& ctx) {
    core::Accelerator& ac = ctx.session()[0];
    const gpu::DevPtr p = ac.mem_alloc(1_MiB);
    for (int i = 0; i < 40; ++i) {
      ac.memcpy_h2d(p, util::Buffer::phantom(256_KiB));
    }
  };
  cluster.submit(job);
  cluster.run();

  // The recorder saw the kill and the consensus layer's reaction to it —
  // no tracer, no metrics registry needed: the flight tier is always on.
  const std::string dump = cluster.flight().dump();
  EXPECT_NE(dump.find("[chaos] kill-leader-r"), std::string::npos) << dump;
  EXPECT_NE(dump.find("[raft]"), std::string::npos)
      << "no consensus events around the kill:\n"
      << dump;
  // Causal order: the chaos kill precedes the election it triggers.
  const std::vector<FlightRecorder::Event> events = cluster.flight().events();
  SimTime kill_at = 0;
  SimTime election_at = 0;
  for (const auto& e : events) {
    if (kill_at == 0 && e.category == "chaos" &&
        e.what.rfind("kill-leader-", 0) == 0) {
      kill_at = e.time;
    }
    if (kill_at != 0 && election_at == 0 && e.category == "raft" &&
        e.what.find("election") != std::string::npos) {
      election_at = e.time;
    }
  }
  ASSERT_NE(kill_at, 0) << "chaos kill not recorded";
  ASSERT_NE(election_at, 0) << "no election event after the kill";
  EXPECT_GT(election_at, kill_at);
}

// ---------------------------------------------------------------------------
// Injected device fault + auto-dump to disk
// ---------------------------------------------------------------------------

TEST(FlightChaos, InjectedFaultAutoDumpsWithTraceIds) {
  const std::string path =
      ::testing::TempDir() + "dacc_flight_autodump.txt";
  std::remove(path.c_str());

  rt::ClusterConfig config;
  config.compute_nodes = 1;
  config.accelerators = 1;
  config.functional_gpus = false;
  config.trace = true;  // traced stream: flight events carry trace ids
  config.batch = {/*enabled=*/true, /*watermark=*/16};
  config.retry.request_timeout = 1_ms;  // detect the dead link, don't hang
  config.flight_dump_path = path;
  rt::Cluster cluster(config);
  // Fail the accelerator's fabric link mid-run: the front-end's batched
  // retry ladder runs dry and notes it to the recorder under the batch's
  // trace id.
  cluster.fail_accelerator_link(0, 2_ms);

  rt::JobSpec job;
  job.accelerators_per_rank = 1;
  job.body = [](rt::JobContext& ctx) {
    core::Accelerator& ac = ctx.session()[0];
    const gpu::DevPtr p = ac.mem_alloc(64_KiB);
    // Outlive the link: sync copies until past the cut...
    for (int i = 0; i < 200 && ctx.ctx().now() < 3_ms; ++i) {
      try {
        ac.memcpy_h2d(p, util::Buffer::phantom(64_KiB));
      } catch (const core::AcError&) {
        break;  // the link died under us — exactly the post-mortem case
      }
    }
    // ...then flush an async burst into the dead link. The batch times
    // out, the retry ladder exhausts, and the flight recorder hears it.
    std::vector<core::Future> burst;
    for (int i = 0; i < 8; ++i) {
      burst.push_back(
          ac.launch_async("dscal", {}, {std::int64_t{16}, 2.0, p}));
    }
    ctx.session().wait_all(burst);
  };
  cluster.submit(job);
  cluster.run();

  // The chaos event itself is in the ring...
  const std::vector<FlightRecorder::Event> events = cluster.flight().events();
  bool chaos_seen = false;
  bool traced_event = false;
  for (const auto& e : events) {
    if (e.category == "chaos") chaos_seen = true;
    if (e.trace_id != 0) traced_event = true;
  }
  EXPECT_TRUE(chaos_seen);
  EXPECT_TRUE(traced_event)
      << "no flight event carried a trace id on a traced run";

  // ...and the injected fault triggered the automatic post-mortem file.
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "auto-dump file missing: " << path;
  std::stringstream file;
  file << in.rdbuf();
  EXPECT_NE(file.str().find("=== flight recorder:"), std::string::npos);
  EXPECT_NE(file.str().find("[chaos]"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightChaos, QuietRunsWriteNoPostMortem) {
  const std::string path =
      ::testing::TempDir() + "dacc_flight_quiet.txt";
  std::remove(path.c_str());
  rt::ClusterConfig config;
  config.compute_nodes = 1;
  config.accelerators = 1;
  config.functional_gpus = false;
  config.flight_dump_path = path;
  rt::Cluster cluster(config);
  rt::JobSpec job;
  job.accelerators_per_rank = 1;
  job.body = [](rt::JobContext& ctx) {
    (void)ctx.session()[0].mem_alloc(4_KiB);
  };
  cluster.submit(job);
  cluster.run();
  std::ifstream in(path);
  EXPECT_FALSE(in.good()) << "quiet run must not write a post-mortem";
}

// ---------------------------------------------------------------------------
// Explicit dump hook
// ---------------------------------------------------------------------------

TEST(FlightChaos, ExplicitDumpWorksWithoutFaults) {
  rt::Cluster cluster(dacc::testing::small_cluster(1, 1));
  rt::JobSpec job;
  job.accelerators_per_rank = 1;
  job.body = [](rt::JobContext& ctx) {
    (void)ctx.session()[0].mem_alloc(4_KiB);
  };
  cluster.submit(job);
  cluster.run();
  std::ostringstream os;
  cluster.dump_flight_recorder(os);
  EXPECT_NE(os.str().find("=== flight recorder:"), std::string::npos);
}

}  // namespace
}  // namespace dacc::obs
