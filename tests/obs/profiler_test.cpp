// The wallclock observability tier (DESIGN.md §9.2): label escaping in the
// exposition format, fixed-bucket quantile estimation and SLO targets on
// the deterministic registry, and the hard separation between the two
// tiers — dacc_prof_* wallclock series must never leak into the
// byte-compared deterministic snapshot on any execution backend.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/api.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

namespace dacc::obs {
namespace {

// ---------------------------------------------------------------------------
// Exporter label escaping
// ---------------------------------------------------------------------------

/// Inverse of the exposition escaping — the round-trip check's other half.
std::string unescape_label(std::string_view escaped) {
  std::string out;
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '\\' && i + 1 < escaped.size()) {
      const char next = escaped[++i];
      out += next == 'n' ? '\n' : next;
    } else {
      out += escaped[i];
    }
  }
  return out;
}

TEST(Labels, EscapesBackslashQuoteAndNewline) {
  EXPECT_EQ(labeled("m", "k", "plain"), "m{k=\"plain\"}");
  EXPECT_EQ(labeled("m", "k", "a\\b"), "m{k=\"a\\\\b\"}");
  EXPECT_EQ(labeled("m", "k", "say \"hi\""), "m{k=\"say \\\"hi\\\"\"}");
  EXPECT_EQ(labeled("m", "k", "two\nlines"), "m{k=\"two\\nlines\"}");
}

TEST(Labels, EscapedValuesRoundTrip) {
  const std::vector<std::string> nasty = {
      "back\\slash", "quo\"te", "new\nline", "all\\three\"at\nonce", "\\",
      "\"", "\n", "trailing\\"};
  for (const std::string& value : nasty) {
    const std::string series = labeled("dacc_test", "v", value);
    // Extract the escaped payload between k="..." and round-trip it.
    const std::size_t open = series.find("=\"") + 2;
    const std::size_t close = series.rfind("\"}");
    ASSERT_NE(open, std::string::npos);
    ASSERT_GT(close, open);
    EXPECT_EQ(unescape_label(series.substr(open, close - open)), value)
        << "escaping not invertible for: " << value;
  }
}

TEST(Labels, EscapedSeriesSurviveTheExporters) {
  Registry reg;
  reg.counter(labeled("dacc_test_total", "path", "a\\b\n\"c\"")).add(1);
  const std::string prom = reg.prometheus();
  // The exposition text itself must stay one line per sample: the raw
  // newline never appears, its escape does.
  EXPECT_NE(prom.find("a\\\\b\\n\\\"c\\\""), std::string::npos) << prom;
  EXPECT_EQ(prom.find("a\\b\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Quantile estimation edge cases
// ---------------------------------------------------------------------------

TEST(HistQuantiles, EmptyHistogramReadsZero) {
  Registry reg;
  (void)reg.histogram("dacc_test_ns", {10, 100});
  const Hist h = reg.hist("dacc_test_ns");
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p99(), 0u);
}

TEST(HistQuantiles, MissingSeriesIsInvalid) {
  Registry reg;
  (void)reg.counter("dacc_test_total");
  EXPECT_FALSE(reg.hist("nope").valid());
  EXPECT_FALSE(reg.hist("dacc_test_total").valid());  // wrong kind
  EXPECT_EQ(reg.hist("nope").p99(), 0u);
}

TEST(HistQuantiles, SingleBucketInterpolates) {
  Registry reg;
  Histogram h = reg.histogram("dacc_test_ns", {100});
  for (int i = 0; i < 10; ++i) h.observe(50);
  const Hist snap = reg.hist("dacc_test_ns");
  // All mass in [0, 100]: the estimate interpolates inside the bucket and
  // never exceeds its upper bound.
  EXPECT_GT(snap.p50(), 0u);
  EXPECT_LE(snap.p50(), 100u);
  EXPECT_LE(snap.p50(), snap.p99());
  EXPECT_LE(snap.p99(), 100u);
}

TEST(HistQuantiles, OverflowBucketClampsToHighestBound) {
  Registry reg;
  Histogram h = reg.histogram("dacc_test_ns", {10, 100});
  h.observe(5);
  h.observe(1'000'000);  // +Inf bucket
  h.observe(2'000'000);  // +Inf bucket
  const Hist snap = reg.hist("dacc_test_ns");
  // p99 lands in the overflow bucket; a fixed-bucket histogram cannot see
  // past its last finite bound, so the estimate clamps there rather than
  // inventing a value.
  EXPECT_EQ(snap.p99(), 100u);
  EXPECT_EQ(snap.quantile_permille(1000), 100u);
}

TEST(HistQuantiles, ExactBoundaryRanks) {
  Registry reg;
  Histogram h = reg.histogram("dacc_test_ns", {10, 20, 30});
  // One observation per bucket: ranks land exactly on bucket edges.
  h.observe(10);
  h.observe(20);
  h.observe(30);
  const Hist snap = reg.hist("dacc_test_ns");
  // rank(p50) = ceil(0.5 * 3) = 2 -> the [10,20] bucket's upper edge.
  EXPECT_EQ(snap.quantile_permille(500), 20u);
  // Extreme quantiles stay within the outermost buckets.
  EXPECT_LE(snap.quantile_permille(1), 10u);
  EXPECT_EQ(snap.quantile_permille(1000), 30u);
}

TEST(HistQuantiles, QuantilesAreMonotone) {
  Registry reg;
  Histogram h = reg.histogram("dacc_test_ns", latency_bounds_ns());
  for (std::uint64_t v : {500u, 900u, 1'200u, 45'000u, 80'000u, 2'000'000u}) {
    h.observe(v);
  }
  const Hist snap = reg.hist("dacc_test_ns");
  std::uint64_t prev = 0;
  for (std::uint32_t q = 100; q <= 1000; q += 100) {
    const std::uint64_t cur = snap.quantile_permille(q);
    EXPECT_GE(cur, prev) << "quantile not monotone at q=" << q;
    prev = cur;
  }
}

// ---------------------------------------------------------------------------
// SLO targets
// ---------------------------------------------------------------------------

TEST(Slos, CheckAgainstCurrentBuckets) {
  Registry reg;
  Histogram h = reg.histogram("dacc_test_wait_ns", {100, 1000, 10'000});
  for (int i = 0; i < 99; ++i) h.observe(50);
  h.observe(5'000);  // one slow outlier
  reg.set_slo("dacc_test_wait_ns", /*q=*/500, /*bound=*/100);     // passes
  reg.set_slo("dacc_test_wait_ns", /*q=*/1000, /*bound=*/100);    // outlier
  reg.set_slo("dacc_test_missing_ns", /*q=*/990, /*bound=*/100);  // typo
  const std::vector<SloResult> results = reg.check_slos();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_LE(results[0].observed, 100u);
  EXPECT_FALSE(results[1].ok) << "outlier above bound must fail the SLO";
  EXPECT_FALSE(results[2].ok) << "missing series must fail, not vanish";
  EXPECT_EQ(results[2].count, 0u);
}

TEST(Slos, EmptySeriesPassesVacuously) {
  Registry reg;
  (void)reg.histogram("dacc_test_wait_ns", {100});
  reg.set_slo("dacc_test_wait_ns", 990, 1);
  const std::vector<SloResult> results = reg.check_slos();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok) << "nothing measured, nothing violated";
}

TEST(Slos, TargetsDoNotPerturbTheSnapshot) {
  Registry reg;
  reg.histogram("dacc_test_wait_ns", {100}).observe(5);
  const std::string before = reg.prometheus();
  reg.set_slo("dacc_test_wait_ns", 990, 100);
  (void)reg.check_slos();
  EXPECT_EQ(reg.prometheus(), before)
      << "SLO registration leaked into the deterministic snapshot";
}

// ---------------------------------------------------------------------------
// Profiler scopes and export
// ---------------------------------------------------------------------------

TEST(Profiler, ScopesAccumulateAndExport) {
  Profiler prof;
  for (int i = 0; i < 3; ++i) {
    Profiler::Scope s = prof.scope("drain");
    volatile int sink = 0;
    for (int j = 0; j < 1000; ++j) sink = sink + j;
  }
  { Profiler::Scope s = prof.scope("flush"); }
  const std::string prom = prof.prometheus();
  EXPECT_NE(prom.find("dacc_prof_scope_samples_total{name=\"drain\"} 3"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("dacc_prof_scope_ns{name=\"drain\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("dacc_prof_scope_samples_total{name=\"flush\"} 1"),
            std::string::npos);
  prof.reset();
  EXPECT_EQ(prof.prometheus().find("drain"), std::string::npos);
}

TEST(Profiler, EverySeriesCarriesTheWallclockPrefix) {
  Profiler prof;
  prof.begin_run(/*shards=*/2, /*workers=*/1);
  prof.shard_phase(0, sim::WallSink::Phase::kBusy, 1'000);
  prof.shard_phase(1, sim::WallSink::Phase::kStall, 2'000);
  prof.worker_wait(0, 500);
  prof.serial(3'000, 7);
  prof.run_complete(10'000, 1);
  { Profiler::Scope s = prof.scope("x"); }
  const std::string prom = prof.prometheus();
  // Every non-comment line is a dacc_prof_ sample: the deterministic
  // snapshot filter only has to know one prefix.
  std::size_t pos = 0;
  int samples = 0;
  while (pos < prom.size()) {
    const std::size_t eol = prom.find('\n', pos);
    const std::string line = prom.substr(pos, eol - pos);
    pos = eol == std::string::npos ? prom.size() : eol + 1;
    if (line.empty() || line[0] == '#') continue;
    EXPECT_EQ(line.rfind(Profiler::kSeriesPrefix, 0), 0u)
        << "unprefixed wallclock series: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 8);
  // The attribution identity holds on hand-fed numbers: phases + waits +
  // serial account for everything fed in.
  EXPECT_EQ(prof.attributed_ns(), 1'000u + 2'000u + 500u + 3'000u);
  EXPECT_EQ(prof.measured_ns(), 10'000u);
}

// ---------------------------------------------------------------------------
// Tier separation: wallclock series never reach the deterministic snapshot
// ---------------------------------------------------------------------------

struct ProfiledRun {
  std::string metrics_prom;
  std::string profile_prom;
  SimTime end = 0;
};

ProfiledRun run_profiled(sim::ExecBackend backend, int shards = 0) {
  rt::ClusterConfig config;
  config.compute_nodes = 1;
  config.accelerators = 2;
  config.functional_gpus = false;
  config.metrics = true;
  config.profile = true;  // wallclock tier on, regardless of DACC_PROF
  config.sim_backend = backend;
  config.sim_shards = shards;
  rt::Cluster cluster(config);
  rt::JobSpec job;
  job.accelerators_per_rank = 1;
  job.body = [](rt::JobContext& ctx) {
    core::Accelerator& ac = ctx.session()[0];
    const gpu::DevPtr p = ac.mem_alloc(1_MiB);
    ac.memcpy_h2d(p, util::Buffer::phantom(1_MiB));
    ac.launch("dscal", {}, {std::int64_t{1 << 16}, 2.0, p});
    (void)ac.memcpy_d2h(p, 1_MiB);
  };
  cluster.submit(job);
  cluster.run();
  ProfiledRun out;
  out.metrics_prom =
      cluster.metrics().prometheus(obs::Registry::kShardSeriesPrefix, false);
  out.profile_prom = cluster.profiler().prometheus();
  out.end = cluster.engine().now();
  return out;
}

TEST(TierSeparation, ProfilerSeriesNeverEnterTheSnapshotOnAnyBackend) {
  const ProfiledRun coro = run_profiled(sim::ExecBackend::kCoroutine);
  const ProfiledRun thread = run_profiled(sim::ExecBackend::kThread);
  const ProfiledRun par = run_profiled(sim::ExecBackend::kParallel, 4);

  for (const ProfiledRun* run : {&coro, &thread, &par}) {
    EXPECT_EQ(run->metrics_prom.find(Profiler::kSeriesPrefix),
              std::string::npos)
        << "wallclock series leaked into the deterministic snapshot";
    EXPECT_FALSE(run->profile_prom.empty());
  }
  // With the profiler attached the deterministic tier still agrees byte
  // for byte across backends — the wallclock tier observes, never steers.
  EXPECT_EQ(coro.metrics_prom, thread.metrics_prom);
  EXPECT_EQ(coro.metrics_prom, par.metrics_prom);
  EXPECT_EQ(coro.end, thread.end);
  EXPECT_EQ(coro.end, par.end);
}

TEST(TierSeparation, RegistryNamespaceStaysClearOfTheProfilerPrefix) {
  // The registry side of the collision check in scripts/check_obs.sh: no
  // instrumented component may register a series under dacc_prof_.
  ProfiledRun run = run_profiled(sim::ExecBackend::kCoroutine);
  EXPECT_EQ(run.metrics_prom.find("dacc_prof_"), std::string::npos);
  // And the inverse: the profiler export is entirely dacc_prof_.
  EXPECT_NE(run.profile_prom.find("dacc_prof_"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SLO readout on a real workload (the tier-1 assign-wait guard)
// ---------------------------------------------------------------------------

TEST(SloReadout, AssignWaitQuantilesOnChurn) {
  rt::ClusterConfig config;
  config.compute_nodes = 2;
  config.accelerators = 3;
  config.functional_gpus = false;
  config.metrics = true;
  rt::Cluster cluster(config);
  rt::JobSpec job;
  job.ranks = 2;
  job.accelerators_per_rank = 1;
  job.body = [](rt::JobContext& ctx) {
    // Acquire/release churn on the shared pool: both ranks contend for the
    // third accelerator, so some grants queue and assign-wait spreads out.
    for (int round = 0; round < 4; ++round) {
      auto extra = ctx.session().acquire(1, /*wait=*/true);
      ASSERT_EQ(extra.size(), 1u);
      const gpu::DevPtr p = extra[0]->mem_alloc(64_KiB);
      extra[0]->memcpy_h2d(p, util::Buffer::phantom(64_KiB));
      ctx.session().release(extra[0]);
    }
  };
  cluster.submit(job);
  cluster.run();

  const obs::Hist wait = cluster.metrics().hist("dacc_arm_assign_wait_ns");
  ASSERT_TRUE(wait.valid()) << "dacc_arm_assign_wait_ns not registered";
  ASSERT_GT(wait.count(), 0u);
  EXPECT_LE(wait.p50(), wait.p99());
  // A generous ceiling: queued grants must still clear within simulated
  // seconds. This is the committed SLO guard for assign-wait.
  cluster.metrics().set_slo("dacc_arm_assign_wait_ns", 990, 1'000'000'000);
  const std::vector<obs::SloResult> results = cluster.metrics().check_slos();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok)
      << "assign-wait p99 " << results[0].observed << "ns above bound";
}

}  // namespace
}  // namespace dacc::obs
