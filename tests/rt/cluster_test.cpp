#include "rt/cluster.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/units.hpp"

namespace dacc::rt {
namespace {

TEST(Cluster, TopologyRanksAreDisjoint) {
  ClusterConfig c;
  c.compute_nodes = 4;
  c.accelerators = 3;
  Cluster cluster(c);
  EXPECT_EQ(cluster.cn_rank(0), 0);
  EXPECT_EQ(cluster.cn_rank(3), 3);
  EXPECT_EQ(cluster.daemon_rank(0), 4);
  EXPECT_EQ(cluster.daemon_rank(2), 6);
  EXPECT_EQ(cluster.arm_rank(), 7);
  EXPECT_EQ(cluster.world().size(), 8);
  EXPECT_THROW((void)cluster.cn_rank(4), std::out_of_range);
  EXPECT_THROW((void)cluster.daemon_rank(3), std::out_of_range);
}

TEST(Cluster, ZeroAcceleratorClusterIsValid) {
  ClusterConfig c;
  c.compute_nodes = 2;
  c.accelerators = 0;
  Cluster cluster(c);
  bool ran = false;
  JobSpec spec;
  spec.body = [&](JobContext& job) {
    ran = true;
    EXPECT_TRUE(job.session().arm().acquire(1, 1).empty());
  };
  cluster.submit(spec);
  cluster.run();
  EXPECT_TRUE(ran);
}

TEST(Cluster, MultiRankJobGetsCommunicator) {
  ClusterConfig c;
  c.compute_nodes = 3;
  c.accelerators = 0;
  Cluster cluster(c);
  std::vector<int> sums(3, -1);
  JobSpec spec;
  spec.ranks = 3;
  spec.body = [&](JobContext& job) {
    EXPECT_EQ(job.size(), 3);
    const double total = job.mpi().allreduce_sum(
        job.job_comm(), static_cast<double>(job.rank()));
    sums[static_cast<std::size_t>(job.rank())] = static_cast<int>(total);
  };
  cluster.submit(spec);
  cluster.run();
  for (int s : sums) EXPECT_EQ(s, 3);  // 0+1+2
}

TEST(Cluster, JobsOnDisjointNodesRunConcurrently) {
  ClusterConfig c;
  c.compute_nodes = 2;
  c.accelerators = 0;
  Cluster cluster(c);
  std::vector<SimTime> finished(2, 0);
  for (int j = 0; j < 2; ++j) {
    JobSpec spec;
    spec.name = "job" + std::to_string(j);
    spec.body = [&finished, j](JobContext& job) {
      job.ctx().wait_for(10_ms);
      finished[static_cast<std::size_t>(j)] = job.ctx().now();
    };
    cluster.submit(spec, /*first_cn=*/j);
  }
  cluster.run();
  // Concurrent, not serialized: both finish around 10 ms.
  EXPECT_LT(finished[0], 11_ms);
  EXPECT_LT(finished[1], 11_ms);
}

TEST(Cluster, StaticAssignmentWaitsForPool) {
  // Job A holds the only accelerator for 5 ms; job B's static allocation
  // queues and B starts only after A ends.
  ClusterConfig c;
  c.compute_nodes = 2;
  c.accelerators = 1;
  Cluster cluster(c);
  SimTime b_started = 0;
  JobSpec a;
  a.name = "a";
  a.accelerators_per_rank = 1;
  a.body = [](JobContext& job) { job.ctx().wait_for(5_ms); };
  JobSpec b;
  b.name = "b";
  b.accelerators_per_rank = 1;
  b.body = [&](JobContext& job) { b_started = job.ctx().now(); };
  cluster.submit(a, 0);
  cluster.submit(b, 1);
  cluster.run();
  EXPECT_GE(b_started, 5_ms);
}

TEST(Cluster, JobHandleSignalsCompletion) {
  ClusterConfig c;
  c.compute_nodes = 2;
  c.accelerators = 0;
  Cluster cluster(c);
  JobSpec inner;
  inner.name = "inner";
  inner.body = [](JobContext& job) { job.ctx().wait_for(1_ms); };
  JobHandle handle = cluster.submit(inner, 1);
  SimTime observed = 0;
  JobSpec outer;
  outer.name = "outer";
  outer.body = [&](JobContext& job) {
    handle.wait(job.ctx());
    observed = job.ctx().now();
  };
  cluster.submit(outer, 0);
  cluster.run();
  EXPECT_GE(observed, 1_ms);
  EXPECT_TRUE(handle.done());
}

TEST(Cluster, SubmitValidation) {
  ClusterConfig c;
  c.compute_nodes = 2;
  c.accelerators = 0;
  Cluster cluster(c);
  JobSpec spec;
  spec.body = [](JobContext&) {};
  spec.ranks = 3;
  EXPECT_THROW(cluster.submit(spec), std::invalid_argument);
  spec.ranks = 1;
  EXPECT_THROW(cluster.submit(spec, 2), std::invalid_argument);
  JobSpec empty;
  EXPECT_THROW(cluster.submit(empty), std::invalid_argument);
}

TEST(Cluster, LocalGpuAvailableWhenConfigured) {
  ClusterConfig c;
  c.compute_nodes = 1;
  c.accelerators = 0;
  c.local_gpus = true;
  Cluster cluster(c);
  JobSpec spec;
  spec.body = [](JobContext& job) {
    gpu::Driver drv = job.local_gpu();
    const gpu::DevPtr p = drv.mem_alloc(1024);
    drv.memcpy_htod(p, util::Buffer::backed_zero(1024));
    EXPECT_EQ(drv.memcpy_dtoh(p, 1024).size(), 1024u);
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Cluster, LocalGpuThrowsWhenAbsent) {
  ClusterConfig c;
  c.compute_nodes = 1;
  c.accelerators = 0;
  Cluster cluster(c);
  JobSpec spec;
  spec.body = [](JobContext& job) {
    EXPECT_THROW((void)job.local_gpu(), std::logic_error);
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Cluster, SequentialJobsReuseAccelerators) {
  ClusterConfig c;
  c.compute_nodes = 1;
  c.accelerators = 1;
  Cluster cluster(c);
  int jobs_ran = 0;
  for (int j = 0; j < 3; ++j) {
    JobSpec spec;
    spec.name = "job" + std::to_string(j);
    spec.accelerators_per_rank = 1;  // queues on the single accelerator
    spec.body = [&](JobContext& job) {
      (void)job.session()[0].mem_alloc(64);
      ++jobs_ran;
    };
    cluster.submit(spec);
  }
  cluster.run();
  EXPECT_EQ(jobs_ran, 3);
  EXPECT_EQ(cluster.arm().stats().free, 1u);
}

TEST(Cluster, ReportAggregatesUtilization) {
  ClusterConfig c;
  c.compute_nodes = 1;
  c.accelerators = 2;
  Cluster cluster(c);
  JobSpec spec;
  spec.accelerators_per_rank = 1;  // only ac0 gets leased
  spec.body = [](JobContext& job) {
    auto& ac = job.session()[0];
    const gpu::DevPtr p = ac.mem_alloc(8_MiB);
    ac.memcpy_h2d(p, util::Buffer::backed_zero(8_MiB));
    ac.launch("fill_f64", {}, {p, std::int64_t{1 << 20}, 1.0});
  };
  cluster.submit(spec);
  cluster.run();
  const Cluster::Report report = cluster.report();
  ASSERT_EQ(report.accelerators.size(), 2u);
  EXPECT_GT(report.accelerators[0].lease_util, 0.5);
  EXPECT_GT(report.accelerators[0].copy_util, 0.0);
  EXPECT_GT(report.accelerators[0].compute_util, 0.0);
  EXPECT_GE(report.accelerators[0].requests, 3u);
  EXPECT_EQ(report.accelerators[1].lease_util, 0.0);
  EXPECT_EQ(report.accelerators[1].requests, 0u);
  EXPECT_GE(report.cn_bytes_sent, 8_MiB);
  std::ostringstream os;
  report.print(os);
  EXPECT_NE(os.str().find("cluster utilization"), std::string::npos);
}

TEST(Cluster, DeterministicReplay) {
  auto run_once = [] {
    ClusterConfig c;
    c.compute_nodes = 2;
    c.accelerators = 2;
    Cluster cluster(c);
    JobSpec spec;
    spec.ranks = 2;
    spec.accelerators_per_rank = 1;
    spec.body = [](JobContext& job) {
      auto& ac = job.session()[0];
      const gpu::DevPtr p = ac.mem_alloc(1_MiB);
      ac.memcpy_h2d(p, util::Buffer::backed_zero(1_MiB));
      (void)ac.memcpy_d2h(p, 1_MiB);
      job.mpi().barrier(job.job_comm());
    };
    cluster.submit(spec);
    cluster.run();
    return cluster.engine().now();
  };
  const SimTime a = run_once();
  const SimTime b = run_once();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dacc::rt
