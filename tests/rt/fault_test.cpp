// Fault injection at awkward moments: the middleware must surface clean
// errors, keep the wire protocol consistent, and leave healthy accelerators
// usable (the paper's fault-tolerance claim, Section III.A).
#include <gtest/gtest.h>

#include "common/testbed.hpp"
#include "core/api.hpp"
#include "rt/cluster.hpp"
#include "util/units.hpp"

namespace dacc::rt {
namespace {

using dacc::testing::small_cluster;

TEST(Fault, DeviceBreaksMidD2HTransfer) {
  ClusterConfig c = small_cluster(/*cns=*/1, /*acs=*/2);
  c.functional_gpus = false;
  Cluster cluster(c);
  // A 64 MiB D2H takes ~25 ms; break the device 5 ms into it.
  JobSpec spec;
  spec.accelerators_per_rank = 2;
  spec.body = [&](JobContext& job) {
    core::Accelerator& a = job.session()[0];
    core::Accelerator& b = job.session()[1];
    const gpu::DevPtr pa = a.mem_alloc(64_MiB);
    const gpu::DevPtr pb = b.mem_alloc(64_MiB);
    job.cluster().break_accelerator(0, job.ctx().now() + 5_ms);
    bool failed = false;
    try {
      (void)a.memcpy_d2h(pa, 64_MiB);
    } catch (const core::AcError& e) {
      failed = true;
      EXPECT_EQ(e.code(), gpu::Result::kEccError);
    }
    EXPECT_TRUE(failed);
    // The protocol stayed consistent: the healthy accelerator still works,
    // and so does further (failing) traffic to the broken one.
    EXPECT_NO_THROW((void)b.memcpy_d2h(pb, 1_MiB));
    EXPECT_THROW((void)a.mem_alloc(64), core::AcError);
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Fault, DeviceBreaksMidH2DTransfer) {
  ClusterConfig c = small_cluster(/*cns=*/1, /*acs=*/1);
  c.functional_gpus = false;
  Cluster cluster(c);
  JobSpec spec;
  spec.accelerators_per_rank = 1;
  spec.body = [&](JobContext& job) {
    core::Accelerator& ac = job.session()[0];
    const gpu::DevPtr p = ac.mem_alloc(64_MiB);
    job.cluster().break_accelerator(0, job.ctx().now() + 5_ms);
    bool failed = false;
    try {
      ac.memcpy_h2d(p, util::Buffer::phantom(64_MiB));
    } catch (const core::AcError&) {
      failed = true;
    }
    EXPECT_TRUE(failed);
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Fault, BrokenAcceleratorDuringQueuedAsyncOps) {
  Cluster cluster(small_cluster(/*cns=*/1, /*acs=*/1));
  JobSpec spec;
  spec.accelerators_per_rank = 1;
  spec.body = [&](JobContext& job) {
    core::Accelerator& ac = job.session()[0];
    const gpu::DevPtr p = ac.mem_alloc(1_MiB);
    // Each issue round trip costs a few microseconds; break mid-stream.
    job.cluster().break_accelerator(0, job.ctx().now() + 100_us);
    // Queue a pile of async work; some issues before the fault, some after.
    std::vector<core::Future> futures;
    for (int i = 0; i < 50; ++i) {
      futures.push_back(ac.launch_async(
          "fill_f64", {}, {p, std::int64_t{128 * 1024}, 1.0}));
    }
    int ok = 0;
    int ecc = 0;
    for (core::Future& f : futures) {
      f.wait(job.ctx());
      if (f.status() == gpu::Result::kSuccess) {
        ++ok;
      } else if (f.status() == gpu::Result::kEccError) {
        ++ecc;
      }
    }
    EXPECT_GT(ok, 0);
    EXPECT_GT(ecc, 0);
    EXPECT_EQ(ok + ecc, 50);
  };
  cluster.submit(spec);
  cluster.run();
}

TEST(Fault, JobCompletesDespiteBrokenPoolMember) {
  // The launcher's static assignment skips nothing — but a job using the
  // dynamic API can simply route around a pre-broken accelerator.
  Cluster cluster(small_cluster(/*cns=*/1, /*acs=*/3));
  cluster.break_accelerator(1, 0);
  JobSpec spec;
  spec.body = [&](JobContext& job) {
    // All three still lease (the ARM does not health-check on grant)...
    auto accs = job.session().acquire(3, false);
    ASSERT_EQ(accs.size(), 3u);
    int healthy = 0;
    for (core::Accelerator* ac : accs) {
      try {
        (void)ac->mem_alloc(64);
        ++healthy;
      } catch (const core::AcError&) {
        job.session().arm().report_broken(ac->daemon_rank());
      }
    }
    EXPECT_EQ(healthy, 2);
    EXPECT_EQ(job.session().arm().stats().broken, 1u);
  };
  cluster.submit(spec);
  cluster.run();
}

}  // namespace
}  // namespace dacc::rt
