// Tracing through the full middleware: a traced job leaves a coherent
// timeline behind (daemon spans nested within the front-end spans that
// caused them).
#include <gtest/gtest.h>

#include "rt/cluster.hpp"
#include "util/units.hpp"

namespace dacc::rt {
namespace {

TEST(TraceIntegration, MiddlewareSpansAreRecorded) {
  ClusterConfig c;
  c.compute_nodes = 1;
  c.accelerators = 1;
  c.trace = true;
  Cluster cluster(c);
  JobSpec spec;
  spec.accelerators_per_rank = 1;
  spec.body = [](JobContext& job) {
    auto& ac = job.session()[0];
    const gpu::DevPtr p = ac.mem_alloc(4_MiB);
    ac.memcpy_h2d(p, util::Buffer::backed_zero(4_MiB));
    ac.launch("dscal", {}, {std::int64_t{1024}, 2.0, p});
    (void)ac.memcpy_d2h(p, 4_MiB);
    ac.mem_free(p);
  };
  cluster.submit(spec);
  cluster.run();

  sim::Tracer& tracer = cluster.tracer();
  ASSERT_FALSE(tracer.empty());

  const auto daemon = tracer.track("daemon-r1");
  const auto fe = tracer.track("fe-r0-ac1");
  ASSERT_GE(daemon.size(), 5u);  // alloc, h2d, launch, d2h, free
  ASSERT_GE(fe.size(), 5u);

  // Every daemon span lies inside some front-end span (the request that
  // triggered it), and all spans are well-formed and time-ordered.
  for (const auto& d : daemon) {
    EXPECT_LE(d.begin, d.end);
    bool contained = false;
    for (const auto& f : fe) {
      if (f.begin <= d.begin && d.end <= f.end) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << d.name;
  }

  // The big copy dominates the timeline.
  SimDuration h2d_span = 0;
  for (const auto& d : daemon) {
    if (d.name == "MemcpyHtoD") h2d_span = d.end - d.begin;
  }
  EXPECT_GT(h2d_span, 1_ms);  // 4 MiB at ~2.5 GiB/s
}

TEST(TraceIntegration, UntracedClusterRecordsNothing) {
  ClusterConfig c;
  c.compute_nodes = 1;
  c.accelerators = 1;
  Cluster cluster(c);
  JobSpec spec;
  spec.accelerators_per_rank = 1;
  spec.body = [](JobContext& job) {
    (void)job.session()[0].mem_alloc(64);
  };
  cluster.submit(spec);
  cluster.run();
  EXPECT_TRUE(cluster.tracer().empty());
}

}  // namespace
}  // namespace dacc::rt
